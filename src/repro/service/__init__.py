"""Search-as-a-service: queued, deduped, cancellable plan execution.

This package turns the one-shot execution engine into a long-lived
service:

* :class:`SearchService` -- ``submit(plan) -> JobHandle`` with a
  priority queue, a bounded worker pool, job lifecycle states
  (queued / running / cancelled / failed / done), cooperative
  cancellation that checkpoints, and in-flight dedup of identical
  plans;
* :class:`ResultStore` -- a content-addressed store keyed by
  :func:`repro.plans.plan_hash`, so resubmitting an identical plan
  returns the stored result byte-identically without re-running;
* :func:`execute_plan` -- the single workload dispatcher every
  execution surface shares (:meth:`repro.api.Session.run` is a thin
  synchronous wrapper over a one-job service);
* :class:`JobJournal` -- an append-only, crash-consistent JSONL log of
  job transitions; a restarted service replays it and re-queues every
  unfinished job, which then resumes from its per-hash checkpoints;
* :class:`WorkerPool` (:mod:`~repro.service.pool`) -- the one process
  runtime every parallel surface shares: long-lived worker processes
  with typed event-pipe framing, cooperative cancellation and
  parent-death detection.  Campaign shard fan-out, the ``process``
  execution backend (:mod:`~repro.service.workers`) and the
  federation agents all dispatch onto it, so GIL-bound searches scale
  with cores without paying one process spawn per unit of work;
* :func:`serve <repro.service.http.serve>` / :class:`ServiceClient` --
  a stdlib-only HTTP JSON endpoint (``repro serve``) and its client
  (``repro submit``);
* :class:`WorkerAgent` (``repro agent``) -- the federation worker: it
  claims jobs from a coordinator under journal-backed *leases*, renews
  them via heartbeats, executes through the process backend, and
  streams events/results back; a missed lease re-queues the job, which
  resumes from its checkpoint on another agent (or a local worker)
  with byte-identical results (:mod:`~repro.service.faults` provides
  the deterministic crash points the chaos tests kill agents with);
* :class:`Gateway` (``repro serve --async``) -- the asyncio HTTP
  front end: same wire surface as the sync server plus Server-Sent
  Events and long-poll event delivery, API-key tenancy with quotas
  and fair-share queuing (:class:`TenantRegistry`), backpressure, a
  ``/metrics`` endpoint (:class:`MetricsRegistry`), and graceful
  SIGTERM drain.
"""

from repro.service.agent import WorkerAgent, run_agent
from repro.service.client import JobTimeoutError, ServiceClient, ServiceError
from repro.service.executor import execute_plan
from repro.service.gateway import Gateway, GatewayRunner, run_gateway
from repro.service.journal import JobJournal, PendingJob
from repro.service.metrics import ANONYMOUS_TENANT, MetricsRegistry
from repro.service.pool import WorkerDied, WorkerPool
from repro.service.tenants import (
    QuotaExceededError,
    Tenant,
    TenantAuthError,
    TenantRegistry,
    fair_share_priority,
    tenant_accounting,
)
from repro.service.service import (
    JOB_STATES,
    JobCancelledError,
    JobHandle,
    RemoteJobError,
    SearchService,
    StaleLeaseError,
    UnknownAgentError,
    UnknownJobError,
)
from repro.service.store import ResultStore, is_cacheable
from repro.service.workers import ProcessWorkerError, run_job_in_process

__all__ = [
    "ANONYMOUS_TENANT",
    "Gateway",
    "GatewayRunner",
    "JOB_STATES",
    "JobCancelledError",
    "JobHandle",
    "JobJournal",
    "JobTimeoutError",
    "MetricsRegistry",
    "PendingJob",
    "ProcessWorkerError",
    "QuotaExceededError",
    "RemoteJobError",
    "ResultStore",
    "SearchService",
    "ServiceClient",
    "ServiceError",
    "StaleLeaseError",
    "Tenant",
    "TenantAuthError",
    "TenantRegistry",
    "UnknownAgentError",
    "UnknownJobError",
    "WorkerAgent",
    "WorkerDied",
    "WorkerPool",
    "execute_plan",
    "fair_share_priority",
    "is_cacheable",
    "run_agent",
    "run_job_in_process",
    "tenant_accounting",
]
