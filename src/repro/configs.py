"""Table 2: data sets and parameter settings of the FNAS experiments.

Every value here is copied from the paper's Table 2:

=========  ======  =====  ==  ==  ===========  =============  ===  =================
Data set   Train   Val.   E   L   FS           FN             T    [TS4,TS3,TS2,TS1]
=========  ======  =====  ==  ==  ===========  =============  ===  =================
MNIST      60,000  10,000 25  4   [5,7,14]     [9,18,36]      60   high [2,5,10,20]
                                                                    low  [1,4,10,20]
CIFAR-10   45,000  5,000  25  10  [1,3,5,7]    [24,36,48,64]  60   [1.5,2,2.5,10]
ImageNet   4,500   500    25  15  [1,3,5,7]    [16,32,64,128] 60   [2.5,5,7.5,10]
=========  ======  =====  ==  ==  ===========  =============  ===  =================

(E: training epochs, L: layers, FS: filter sizes, FN: filter counts,
T: trials/child networks searched, TS: timing specifications in ms,
indexed loosest = TS1 to tightest = TS4.)
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass, field


@dataclass(frozen=True)
class TimingSpecs:
    """The four timing specifications TS1 (loosest) .. TS4 (tightest)."""

    ts1: float
    ts2: float
    ts3: float
    ts4: float

    def __post_init__(self) -> None:
        values = (self.ts4, self.ts3, self.ts2, self.ts1)
        if any(v <= 0 for v in values):
            raise ValueError(f"timing specs must be positive: {values}")
        if not (self.ts4 <= self.ts3 <= self.ts2 <= self.ts1):
            raise ValueError(
                "timing specs must tighten from TS1 to TS4, got "
                f"TS1={self.ts1} TS2={self.ts2} TS3={self.ts3} TS4={self.ts4}"
            )

    def by_name(self, name: str) -> float:
        """Look up a spec by ``"TS1"`` .. ``"TS4"``."""
        table = {"TS1": self.ts1, "TS2": self.ts2, "TS3": self.ts3,
                 "TS4": self.ts4}
        try:
            return table[name.upper()]
        except KeyError:
            raise KeyError(f"unknown timing spec {name!r}; expected TS1..TS4")

    def as_list(self) -> list[tuple[str, float]]:
        """``[("TS1", ms), ..., ("TS4", ms)]`` loosest-first."""
        return [("TS1", self.ts1), ("TS2", self.ts2), ("TS3", self.ts3),
                ("TS4", self.ts4)]


@dataclass(frozen=True)
class ExperimentConfig:
    """One dataset row of Table 2 plus the derived search-space facts."""

    dataset: str
    train_size: int
    val_size: int
    epochs: int
    num_layers: int
    filter_sizes: tuple[int, ...]
    filter_counts: tuple[int, ...]
    trials: int
    input_size: int
    input_channels: int
    num_classes: int
    timing_specs: TimingSpecs
    timing_specs_low: TimingSpecs | None = None
    conv_types: tuple[str, ...] = ("standard",)

    def __post_init__(self) -> None:
        if self.num_layers <= 0 or self.trials <= 0 or self.epochs <= 0:
            raise ValueError("num_layers, trials and epochs must be positive")
        if not self.filter_sizes or not self.filter_counts:
            raise ValueError("filter size/count choice lists cannot be empty")
        if not self.conv_types:
            raise ValueError("conv_types cannot be empty")

    @property
    def space_size(self) -> int:
        """Number of distinct architectures in the search space."""
        per_layer = len(self.filter_sizes) * len(self.filter_counts)
        if len(self.conv_types) > 1:
            per_layer *= len(self.conv_types)
        return per_layer ** self.num_layers


MNIST_CONFIG = ExperimentConfig(
    dataset="mnist",
    train_size=60_000,
    val_size=10_000,
    epochs=25,
    num_layers=4,
    filter_sizes=(5, 7, 14),
    filter_counts=(9, 18, 36),
    trials=60,
    input_size=28,
    input_channels=1,
    num_classes=10,
    timing_specs=TimingSpecs(ts1=20.0, ts2=10.0, ts3=5.0, ts4=2.0),
    timing_specs_low=TimingSpecs(ts1=20.0, ts2=10.0, ts3=4.0, ts4=1.0),
)

CIFAR_CONFIG = ExperimentConfig(
    dataset="cifar10",
    train_size=45_000,
    val_size=5_000,
    epochs=25,
    num_layers=10,
    filter_sizes=(1, 3, 5, 7),
    filter_counts=(24, 36, 48, 64),
    trials=60,
    input_size=32,
    input_channels=3,
    num_classes=10,
    timing_specs=TimingSpecs(ts1=10.0, ts2=2.5, ts3=2.0, ts4=1.5),
)

IMAGENET_CONFIG = ExperimentConfig(
    dataset="imagenet",
    train_size=4_500,
    val_size=500,
    epochs=25,
    num_layers=15,
    filter_sizes=(1, 3, 5, 7),
    filter_counts=(16, 32, 64, 128),
    trials=60,
    input_size=32,
    input_channels=3,
    num_classes=20,
    timing_specs=TimingSpecs(ts1=10.0, ts2=7.5, ts3=5.0, ts4=2.5),
)

MOBILENET_CONFIG = ExperimentConfig(
    dataset="mobilenet",
    train_size=4_500,
    val_size=500,
    epochs=25,
    num_layers=6,
    filter_sizes=(3, 5, 7),
    filter_counts=(16, 32, 64),
    trials=60,
    input_size=32,
    input_channels=3,
    num_classes=10,
    timing_specs=TimingSpecs(ts1=10.0, ts2=5.0, ts3=2.5, ts4=1.0),
    # Cheapest choice first: the surrogate's MAC-bound probe decodes the
    # all-zeros token sequence as the smallest architecture, and a
    # separable layer is cheaper than its standard twin at every
    # (FS, FN) choice this space offers.
    conv_types=("separable", "standard"),
)
"""MobileNet-class extension space: per-layer conv-type choice.

Not a Table 2 row -- this space exists to exercise the memory-hierarchy
model: depthwise layers have tiny compute per byte moved, so their
latency ranking flips between bandwidth-rich and bandwidth-starved
devices (the figure9 experiment).
"""

CONFIGS: dict[str, ExperimentConfig] = {
    "mnist": MNIST_CONFIG,
    "cifar10": CIFAR_CONFIG,
    "imagenet": IMAGENET_CONFIG,
    "mobilenet": MOBILENET_CONFIG,
}


def get_config(dataset: str) -> ExperimentConfig:
    """Table 2 row for ``dataset``."""
    try:
        return CONFIGS[dataset]
    except KeyError:
        known = ", ".join(sorted(CONFIGS))
        hint = ""
        if isinstance(dataset, str):
            close = difflib.get_close_matches(dataset, sorted(CONFIGS), n=1)
            if close:
                hint = f" (did you mean {close[0]!r}?)"
        raise KeyError(f"unknown dataset {dataset!r}{hint}; known: {known}")
