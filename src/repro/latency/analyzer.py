"""FNAS-Analyzer: closed-form pipeline latency (paper Section 3.6).

For a PE pipeline under FNAS-Sched, the latency of one inference
decomposes into each PE's *start time* plus the last PE's *processing
time* (stalls are avoided by the ready-to-run queue, so the closed form
is a tight lower bound on the simulated makespan):

* ``ET_i = Kh_i * Kw_i * Tr_i * Tc_i``   -- cycles per task (eq. before (2));
* ``PT_i = ET_i * #tasks_i``             -- a PE's total compute (eq. (2));
* ``dt_ofm(i)`` -- extra start delay of layer ``i`` when layer ``i-1``
  runs **OFM reuse** (eq. (3)): one upstream OFM tile completes every
  ``ceil(N_{i-1}/Tn_{i-1})`` tasks, and one downstream IFM tile needs
  ``ceil(Tn_i / Tm_{i-1})`` of them::

      dt_ofm(i) = ceil(N_{i-1}/Tn_{i-1}) * ceil(Tn_i/Tm_{i-1}) * ET_{i-1}

* ``dt_ifm(i)`` -- start delay when layer ``i-1`` runs **IFM reuse**
  (eq. (4)): the upstream PE touches every input tile once per output
  sweep, so the first OFM tile only completes near the end of the sweep::

      dt_ifm(i) = [ (ceil(N_{i-1}/Tn_{i-1}) - 1) * ceil(M_{i-1}/Tm_{i-1})
                    + ceil(Tn_i/Tm_{i-1}) ] * ET_{i-1}

* both formulas implicitly assume the downstream's first input tile is
  assembled from the upstream's *first* row/col tile only.  When the
  upstream spatial grid is finer than the downstream's first input
  window (wide-then-narrow channel transitions tile the upstream map
  more finely), the upstream PE must additionally finish every task of
  the ``m`` whole row/col tiles preceding the last one needed, adding
  ``m * ceil(N_{i-1}/Tn_{i-1}) * ceil(M_{i-1}/Tm_{i-1}) * ET_{i-1}``
  to either delta.  FNAS-Sched orders row/col tiles outermost, so this
  prefix term is exact for both reuse strategies; which upstream tiles
  the first downstream tile needs is decided by the same overlap rule
  FNAS-GG uses (:func:`repro.taskgraph.graph.rc_dependencies`).

* ``Latsys = sum of per-layer start deltas + PT_last``  (eq. (5)).

The start deltas accumulate along the pipeline: layer ``i`` starts
``dt(i)`` after layer ``i-1``, where which formula applies is decided by
layer ``i-1``'s reuse strategy.  Equation (5) in the paper spells this
out for the alternating assignment (odd layers OFM reuse, even layers
IFM reuse); this implementation accepts any strategy assignment.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.fpga.dram import PhaseLatency
from repro.fpga.tiling import LayerDesign, PipelineDesign
from repro.scheduling.base import IFM_REUSE, OFM_REUSE
from repro.scheduling.fnas_sched import alternating_strategies
from repro.taskgraph.graph import rc_dependencies, resolve_rc_mapping


@dataclass(frozen=True)
class LayerLatency:
    """Per-layer timing terms of the closed-form model.

    ``execution_time`` / ``processing_time`` are the *effective* values
    the pipeline math uses: on DRAM-modeled devices a task costs
    ``max(load, compute, write)`` under double-buffered phase overlap
    (the per-phase breakdown is in ``phases``); on flat-bandwidth
    devices they equal the seed's pure-compute numbers and ``phases``
    is ``None``.
    """

    layer_index: int
    reuse: str
    execution_time: int
    processing_time: int
    start_delta: int
    start_time: int
    phases: PhaseLatency | None = None

    @property
    def finish_bound(self) -> int:
        """Lower bound on this PE's finish: start + effective work."""
        return self.start_time + self.processing_time

    @property
    def bound(self) -> str:
        """Dominating phase (``"compute"`` on flat-bandwidth devices)."""
        if self.phases is None:
            return "compute"
        return self.phases.bound


@dataclass(frozen=True)
class LatencyReport:
    """Full analyzer output for one pipeline design."""

    layers: tuple[LayerLatency, ...]
    total_cycles: int
    total_ms: float

    @property
    def start_times(self) -> tuple[int, ...]:
        """Analytical start time per PE."""
        return tuple(layer.start_time for layer in self.layers)

    @property
    def bottleneck_layer(self) -> int:
        """Index of the PE with the largest processing time."""
        return max(self.layers, key=lambda l: l.processing_time).layer_index


class FnasAnalyzer:
    """Closed-form latency analysis of a pipeline design.

    Parameters:
        strategies: overrides the alternating reuse assignment.
        rc_mapping: row/col dependency mode mirrored from FNAS-GG
            (``"auto"``, ``"identity"`` or ``"overlap"``); keep it equal
            to the task-graph generator's setting so the closed form
            models the same dependency structure the simulator executes.
    """

    def __init__(
        self,
        strategies: list[str] | None = None,
        rc_mapping: str = "auto",
    ):
        self.strategies = strategies
        self.rc_mapping = rc_mapping

    def analyze(self, design: PipelineDesign) -> LatencyReport:
        """Compute the eq. (5) latency for ``design``."""
        n_layers = len(design.layers)
        strategies = self.strategies or alternating_strategies(n_layers)
        if len(strategies) != n_layers:
            raise ValueError(
                f"{len(strategies)} strategies for {n_layers} layers"
            )
        layers: list[LayerLatency] = []
        start = 0
        for idx, layer in enumerate(design.layers):
            if idx == 0:
                delta = 0
            else:
                delta = self.start_delta(
                    design.layers[idx - 1], layer, strategies[idx - 1],
                    rc_mapping=self.rc_mapping,
                )
            start += delta
            layers.append(
                LayerLatency(
                    layer_index=idx,
                    reuse=strategies[idx],
                    execution_time=layer.effective_execution_time,
                    processing_time=layer.effective_processing_time,
                    start_delta=delta,
                    start_time=start,
                    phases=layer.phases,
                )
            )
        # Eq. (5): start-time accumulation plus the last PE's processing
        # time.  Since upstream PEs can keep feeding the last PE after it
        # starts, the pipeline drains when the *slowest suffix* finishes;
        # taking the max over finish bounds keeps the bound tight when an
        # interior PE dominates.
        total_cycles = max(layer.finish_bound for layer in layers)
        total_ms = design.platform.cycles_to_ms(total_cycles)
        return LatencyReport(
            layers=tuple(layers),
            total_cycles=total_cycles,
            total_ms=total_ms,
        )

    @staticmethod
    def start_delta(
        upstream: LayerDesign,
        downstream: LayerDesign,
        upstream_reuse: str,
        rc_mapping: str = "auto",
    ) -> int:
        """Start-time gap between two adjacent PEs (eqs. (3) / (4)).

        Both equations count upstream tasks until the downstream's
        first IFM tile is assembled; the row/col prefix term extends
        them to upstream grids finer than the downstream's first input
        window (each earlier row/col tile costs a full channel sweep).
        """
        n_ifm_up = upstream.n_ifm_channel_tiles
        n_ofm_up = upstream.n_ofm_channel_tiles
        ofm_tiles_needed = math.ceil(downstream.tiling.tn / upstream.tiling.tm)
        ofm_tiles_needed = min(ofm_tiles_needed, n_ofm_up)
        et_up = upstream.effective_execution_time
        last_rc = FnasAnalyzer._last_rc_tile_needed(
            upstream, downstream, rc_mapping
        )
        if upstream.spec.is_depthwise:
            # No channel reduction upstream: within a row/col sweep the
            # k-th OFM tile completes after exactly k+1 tasks (one task
            # per channel tile), and both reuse orderings coincide on
            # the diagonal task set.
            rc_prefix = last_rc * n_ofm_up
            if upstream_reuse in (OFM_REUSE, IFM_REUSE):
                return (rc_prefix + ofm_tiles_needed) * et_up
            raise ValueError(f"unknown reuse strategy {upstream_reuse!r}")
        rc_prefix = last_rc * n_ifm_up * n_ofm_up
        if upstream_reuse == OFM_REUSE:
            return (rc_prefix + n_ifm_up * ofm_tiles_needed) * et_up
        if upstream_reuse == IFM_REUSE:
            return (rc_prefix + (n_ifm_up - 1) * n_ofm_up
                    + ofm_tiles_needed) * et_up
        raise ValueError(f"unknown reuse strategy {upstream_reuse!r}")

    @staticmethod
    def _last_rc_tile_needed(
        upstream: LayerDesign, downstream: LayerDesign, rc_mapping: str
    ) -> int:
        """Index of the last upstream row/col tile feeding the
        downstream's first IFM tile (0 when the grids map one-to-one)."""
        mode = resolve_rc_mapping(upstream, downstream, rc_mapping)
        if mode == "identity":
            return 0
        return max(rc_dependencies(upstream, downstream, 0))
