"""Design-space exploration over FNAS-Design variants.

The paper's FNAS-Design picks one tiling per layer; this explorer puts
the analyzer in the loop and compares the candidate design policies
(spatial strategy x first-layer reuse choice), returning the design and
reuse assignment with the lowest analytical latency.  It implements the
"best parameters can be obtained according to [8, 13]" step as an
explicit, testable search instead of a fixed heuristic.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.architecture import Architecture
from repro.fpga.platform import Platform
from repro.fpga.tiling import LayerDesignMemo, PipelineDesign, TilingDesigner
from repro.latency.analyzer import FnasAnalyzer, LatencyReport
from repro.scheduling.base import IFM_REUSE, OFM_REUSE
from repro.scheduling.fnas_sched import alternating_strategies


@dataclass(frozen=True)
class ExplorationChoice:
    """One evaluated point of the design space."""

    spatial_strategy: str
    first_reuse: str
    design: PipelineDesign
    report: LatencyReport

    @property
    def total_cycles(self) -> int:
        """Analytical latency of this choice."""
        return self.report.total_cycles


@dataclass(frozen=True)
class ExplorationResult:
    """Best design plus every evaluated alternative."""

    best: ExplorationChoice
    evaluated: tuple[ExplorationChoice, ...]

    @property
    def improvement_over_worst(self) -> float:
        """Cycles(worst) / cycles(best) across the evaluated designs."""
        worst = max(c.total_cycles for c in self.evaluated)
        return worst / self.best.total_cycles


class DesignExplorer:
    """Exhaustive search over the small FNAS-Design policy space.

    An optional :class:`~repro.fpga.tiling.LayerDesignMemo` is threaded
    into every designer the explorer builds, so repeated layer shapes --
    common across the architectures of one search run -- skip the
    per-layer tiling search entirely.
    """

    SPATIAL_STRATEGIES = ("max-reuse", "min-start")
    FIRST_REUSE_CHOICES = (OFM_REUSE, IFM_REUSE)

    def __init__(self, memo: LayerDesignMemo | None = None):
        self.memo = memo

    def explore(
        self, architecture: Architecture, platform: Platform
    ) -> ExplorationResult:
        """Evaluate every policy combination and return the best design."""
        choices: list[ExplorationChoice] = []
        for spatial in self.SPATIAL_STRATEGIES:
            designer = TilingDesigner(spatial_strategy=spatial, memo=self.memo)
            design = designer.design(architecture, platform)
            for first in self.FIRST_REUSE_CHOICES:
                strategies = alternating_strategies(
                    architecture.depth, first=first
                )
                report = FnasAnalyzer(strategies=strategies).analyze(design)
                choices.append(
                    ExplorationChoice(
                        spatial_strategy=spatial,
                        first_reuse=first,
                        design=design,
                        report=report,
                    )
                )
        best = min(choices, key=lambda c: c.total_cycles)
        return ExplorationResult(best=best, evaluated=tuple(choices))
