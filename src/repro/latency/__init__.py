"""Analytical latency model (FNAS-Analyzer) and estimation facades."""

from repro.latency.analyzer import FnasAnalyzer, LatencyReport, LayerLatency
from repro.latency.estimator import (
    ANALYTICAL,
    SIMULATE,
    LatencyEstimate,
    LatencyEstimator,
)
from repro.latency.explorer import (
    DesignExplorer,
    ExplorationChoice,
    ExplorationResult,
)

__all__ = [
    "FnasAnalyzer",
    "LatencyReport",
    "LayerLatency",
    "ANALYTICAL",
    "SIMULATE",
    "LatencyEstimate",
    "LatencyEstimator",
    "DesignExplorer",
    "ExplorationChoice",
    "ExplorationResult",
]
