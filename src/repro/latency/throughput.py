"""Steady-state throughput analysis of PE pipelines (extension).

The paper evaluates single-inference latency (the right metric for
low-batch real-time service); with a PE-per-layer pipeline, consecutive
inferences overlap and the steady-state rate is set by the *bottleneck*
PE.  These helpers extend FNAS-Analyzer to batched operation:

* latency of a batch of ``B`` inferences:
  ``Latsys + (B - 1) * max_i PT_i``  (fill the pipe once, then one
  result per bottleneck period);
* sustained throughput: ``clock / max_i PT_i`` inferences per second.

Both reuse the same design/report objects the latency path produces.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fpga.tiling import PipelineDesign
from repro.latency.analyzer import FnasAnalyzer, LatencyReport


@dataclass(frozen=True)
class ThroughputReport:
    """Batched-operation characteristics of one pipeline design."""

    single_latency_cycles: int
    bottleneck_cycles: int
    bottleneck_layer: int
    throughput_fps: float

    def batch_latency_cycles(self, batch: int) -> int:
        """Cycles to finish a batch of ``batch`` inferences."""
        if batch <= 0:
            raise ValueError(f"batch must be positive, got {batch}")
        return (self.single_latency_cycles
                + (batch - 1) * self.bottleneck_cycles)

    def effective_fps(self, batch: int) -> float:
        """Achieved rate for a finite batch (approaches throughput_fps)."""
        cycles = self.batch_latency_cycles(batch)
        return batch * self.throughput_fps * self.bottleneck_cycles / cycles


def analyze_throughput(
    design: PipelineDesign, report: LatencyReport | None = None
) -> ThroughputReport:
    """Throughput analysis of ``design`` (reusing ``report`` if given)."""
    if report is None:
        report = FnasAnalyzer().analyze(design)
    bottleneck = max(report.layers, key=lambda l: l.processing_time)
    clock_hz = design.platform.clock_mhz * 1e6
    return ThroughputReport(
        single_latency_cycles=report.total_cycles,
        bottleneck_cycles=bottleneck.processing_time,
        bottleneck_layer=bottleneck.layer_index,
        throughput_fps=clock_hz / bottleneck.processing_time,
    )
