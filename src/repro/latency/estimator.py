"""End-to-end latency estimation: architecture -> milliseconds.

:class:`LatencyEstimator` is the "FNAS tool" of Figure 2 as one call: it
runs FNAS-Design (tiling), optionally FNAS-GG + FNAS-Sched + the cycle
simulator, or the closed-form FNAS-Analyzer, and returns the inference
latency of an architecture on a platform.  Results are cached by
architecture fingerprint -- the NAS controller revisits architectures
often and the reward evaluation sits on the search hot path.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.architecture import Architecture
from repro.fpga.platform import Platform
from repro.fpga.tiling import PipelineDesign, TilingDesigner
from repro.latency.analyzer import FnasAnalyzer, LatencyReport
from repro.scheduling.fnas_sched import FnasScheduler
from repro.scheduling.simulator import PipelineSimulator
from repro.taskgraph.graph import TaskGraphGenerator

#: Estimation back-ends.
ANALYTICAL = "analytical"
SIMULATE = "simulate"


@dataclass(frozen=True)
class LatencyEstimate:
    """Latency of one architecture on one platform."""

    architecture: Architecture
    cycles: int
    ms: float
    method: str
    design: PipelineDesign
    report: LatencyReport | None = None

    def meets(self, required_ms: float) -> bool:
        """Whether this latency satisfies a timing specification."""
        if required_ms <= 0:
            raise ValueError(f"required_ms must be positive, got {required_ms}")
        return self.ms <= required_ms


class LatencyEstimator:
    """Estimates FPGA inference latency for candidate architectures.

    Parameters:
        platform: the target (multi-)FPGA platform.
        method: ``"analytical"`` (closed-form eqs. (2)-(5); fast, used
            inside the search loop) or ``"simulate"`` (tile-graph +
            FNAS-Sched + event simulation; exact, used for validation
            and for Figure 8-style studies).
        designer: tiling designer; defaults to the paper's max-reuse
            FNAS-Design.
        rc_mapping: row/col tile mapping passed to FNAS-GG (only used by
            the simulate path).
    """

    def __init__(
        self,
        platform: Platform,
        method: str = ANALYTICAL,
        designer: TilingDesigner | None = None,
        rc_mapping: str = "auto",
        explore_designs: bool = True,
    ):
        if method not in (ANALYTICAL, SIMULATE):
            raise ValueError(
                f"unknown method {method!r}; expected "
                f"{ANALYTICAL!r} or {SIMULATE!r}"
            )
        self.platform = platform
        self.method = method
        self.designer = designer
        self.rc_mapping = rc_mapping
        # With no explicit designer, FNAS-Design explores its policy
        # space per architecture (paper: "the best parameters ... can be
        # obtained") instead of committing to one heuristic.
        self.explore_designs = explore_designs and designer is None
        self._cache: dict[str, LatencyEstimate] = {}

    @property
    def cache_size(self) -> int:
        """Number of cached estimates."""
        return len(self._cache)

    def clear_cache(self) -> None:
        """Drop all cached estimates."""
        self._cache.clear()

    def estimate(self, architecture: Architecture) -> LatencyEstimate:
        """Latency of ``architecture`` on the estimator's platform."""
        key = architecture.fingerprint()
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        first_reuse = None
        if self.explore_designs:
            from repro.latency.explorer import DesignExplorer

            best = DesignExplorer().explore(architecture, self.platform).best
            design = best.design
            analytical_report = best.report
            first_reuse = best.first_reuse
        else:
            designer = self.designer if self.designer is not None else TilingDesigner()
            design = designer.design(architecture, self.platform)
            analytical_report = FnasAnalyzer().analyze(design)
        if self.method == ANALYTICAL:
            estimate = LatencyEstimate(
                architecture=architecture,
                cycles=analytical_report.total_cycles,
                ms=analytical_report.total_ms,
                method=self.method,
                design=design,
                report=analytical_report,
            )
        else:
            graph = TaskGraphGenerator(rc_mapping=self.rc_mapping).generate(design)
            scheduler = (
                FnasScheduler(first_reuse=first_reuse)
                if first_reuse is not None
                else FnasScheduler()
            )
            schedule = scheduler.schedule(graph)
            result = PipelineSimulator().run(schedule)
            cycles = result.makespan
            estimate = LatencyEstimate(
                architecture=architecture,
                cycles=cycles,
                ms=self.platform.cycles_to_ms(cycles),
                method=self.method,
                design=design,
                report=analytical_report,
            )
        self._cache[key] = estimate
        return estimate
