"""End-to-end latency estimation: architecture -> milliseconds.

:class:`LatencyEstimator` is the "FNAS tool" of Figure 2 as one call: it
runs FNAS-Design (tiling), optionally FNAS-GG + FNAS-Sched + the cycle
simulator, or the closed-form FNAS-Analyzer, and returns the inference
latency of an architecture on a platform.

Estimation sits on the search hot path, so results are cached at two
tiers:

* **layer tier** -- a :class:`~repro.fpga.tiling.LayerDesignMemo`
  shared by every tiling designer the estimator builds.  Architectures
  in one search run share most per-layer configurations, so the
  expensive FNAS-Design tiling search is reused *across* architecture
  fingerprints.
* **architecture tier** -- a bounded LRU of whole-architecture
  estimates keyed by fingerprint; the NAS controller revisits
  architectures often.

Both tiers expose hit/miss statistics (:attr:`LatencyEstimator.stats`,
:attr:`LatencyEstimator.layer_memo_stats`) for the benchmark harness.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass

from repro.core.architecture import Architecture
from repro.fpga.platform import Platform
from repro.fpga.tiling import LayerDesignMemo, MemoStats, PipelineDesign, TilingDesigner
from repro.latency.analyzer import FnasAnalyzer, LatencyReport
from repro.latency.explorer import DesignExplorer
from repro.scheduling.fnas_sched import FnasScheduler
from repro.scheduling.simulator import PipelineSimulator
from repro.taskgraph.graph import TaskGraphGenerator

#: Estimation back-ends.
ANALYTICAL = "analytical"
SIMULATE = "simulate"

#: Default bound on the whole-architecture LRU cache.  Far above any
#: single search run's working set, but keeps long-lived service
#: processes from growing without bound.
DEFAULT_CACHE_ENTRIES = 4096


@dataclass
class CacheStats(MemoStats):
    """Hit/miss counters of :class:`MemoStats` plus an eviction count,
    for the whole-architecture LRU tier."""

    evictions: int = 0


@dataclass(frozen=True)
class LatencyEstimate:
    """Latency of one architecture on one platform."""

    architecture: Architecture
    cycles: int
    ms: float
    method: str
    design: PipelineDesign
    report: LatencyReport | None = None

    def meets(self, required_ms: float) -> bool:
        """Whether this latency satisfies a timing specification."""
        if required_ms <= 0:
            raise ValueError(f"required_ms must be positive, got {required_ms}")
        return self.ms <= required_ms


class LatencyEstimator:
    """Estimates FPGA inference latency for candidate architectures.

    Parameters:
        platform: the target (multi-)FPGA platform.
        method: ``"analytical"`` (closed-form eqs. (2)-(5); fast, used
            inside the search loop) or ``"simulate"`` (tile-graph +
            FNAS-Sched + event simulation; exact, used for validation
            and for Figure 8-style studies).
        designer: tiling designer; defaults to the paper's max-reuse
            FNAS-Design.
        rc_mapping: row/col tile mapping passed to FNAS-GG (only used by
            the simulate path).
        max_cache_entries: bound on the whole-architecture LRU tier;
            ``None`` disables the bound.
        use_layer_memo: enable the layer-level tiling memo (tier 1).
            Disabling it reproduces the seed estimator's per-architecture
            cost exactly; the throughput benchmark uses that as its
            sequential baseline.
    """

    def __init__(
        self,
        platform: Platform,
        method: str = ANALYTICAL,
        designer: TilingDesigner | None = None,
        rc_mapping: str = "auto",
        explore_designs: bool = True,
        max_cache_entries: int | None = DEFAULT_CACHE_ENTRIES,
        use_layer_memo: bool = True,
    ):
        if method not in (ANALYTICAL, SIMULATE):
            raise ValueError(
                f"unknown method {method!r}; expected "
                f"{ANALYTICAL!r} or {SIMULATE!r}"
            )
        if max_cache_entries is not None and max_cache_entries < 1:
            raise ValueError(
                f"max_cache_entries must be >= 1 or None, got {max_cache_entries}"
            )
        self.platform = platform
        self.method = method
        self.designer = designer
        self.rc_mapping = rc_mapping
        # With no explicit designer, FNAS-Design explores its policy
        # space per architecture (paper: "the best parameters ... can be
        # obtained") instead of committing to one heuristic.
        self.explore_designs = explore_designs and designer is None
        self.max_cache_entries = max_cache_entries
        self.stats = CacheStats()
        self.layer_memo = LayerDesignMemo()
        memo = self.layer_memo if use_layer_memo else None
        self._explorer = DesignExplorer(memo=memo)
        self._designer_memo = memo
        self._cache: OrderedDict[str, LatencyEstimate] = OrderedDict()
        # Guards the LRU dict *and* its CacheStats counters: estimators
        # are shared across service/evaluation threads, and an unlocked
        # OrderedDict corrupts under concurrent move_to_end/popitem.
        self._cache_lock = threading.Lock()

    @property
    def cache_size(self) -> int:
        """Number of cached whole-architecture estimates."""
        with self._cache_lock:
            return len(self._cache)

    @property
    def layer_memo_stats(self) -> MemoStats:
        """Hit/miss counters of the layer-level tiling memo."""
        return self.layer_memo.stats

    def clear_cache(self) -> None:
        """Drop both cache tiers (counters are kept)."""
        with self._cache_lock:
            self._cache.clear()
        self.layer_memo.clear()

    def estimate(self, architecture: Architecture) -> LatencyEstimate:
        """Latency of ``architecture`` on the estimator's platform.

        Thread-safe: the LRU tier and its counters mutate only under
        an internal lock, which is *not* held across the expensive
        fresh analysis -- two threads racing on the same uncached
        fingerprint may both compute (each counting one miss; the
        results are deterministic and identical), but exactly one
        entry wins the cache and every later call returns it.
        """
        key = architecture.fingerprint()
        with self._cache_lock:
            cached = self._cache.get(key)
            if cached is not None:
                self.stats.hits += 1
                self._cache.move_to_end(key)
                return cached
            self.stats.misses += 1
        estimate = self._estimate_fresh(architecture)
        with self._cache_lock:
            existing = self._cache.get(key)
            if existing is not None:
                return existing  # a racing thread won; keep one entry
            self._cache[key] = estimate
            if (self.max_cache_entries is not None
                    and len(self._cache) > self.max_cache_entries):
                self._cache.popitem(last=False)
                self.stats.evictions += 1
        return estimate

    def estimate_batch(
        self, architectures: list[Architecture] | tuple[Architecture, ...]
    ) -> list[LatencyEstimate]:
        """Estimate a batch of candidates, computing duplicates only once.

        Search batches routinely contain repeated fingerprints (the
        controller concentrates probability mass as it converges); the
        LRU tier turns every repeat into a hit, so each distinct
        architecture is analysed at most once per call.  Results are
        returned in input order.
        """
        return [self.estimate(architecture) for architecture in architectures]

    def _estimate_fresh(self, architecture: Architecture) -> LatencyEstimate:
        """Run the full FNAS tool chain for one uncached architecture."""
        first_reuse = None
        if self.explore_designs:
            best = self._explorer.explore(architecture, self.platform).best
            design = best.design
            analytical_report = best.report
            first_reuse = best.first_reuse
        else:
            designer = self.designer if self.designer is not None else TilingDesigner(
                memo=self._designer_memo
            )
            design = designer.design(architecture, self.platform)
            analytical_report = FnasAnalyzer().analyze(design)
        if self.method == ANALYTICAL:
            return LatencyEstimate(
                architecture=architecture,
                cycles=analytical_report.total_cycles,
                ms=analytical_report.total_ms,
                method=self.method,
                design=design,
                report=analytical_report,
            )
        graph = TaskGraphGenerator(rc_mapping=self.rc_mapping).generate(design)
        scheduler = (
            FnasScheduler(first_reuse=first_reuse)
            if first_reuse is not None
            else FnasScheduler()
        )
        schedule = scheduler.schedule(graph)
        result = PipelineSimulator().run(schedule)
        cycles = result.makespan
        return LatencyEstimate(
            architecture=architecture,
            cycles=cycles,
            ms=self.platform.cycles_to_ms(cycles),
            method=self.method,
            design=design,
            report=analytical_report,
        )


# --- Registry entries -----------------------------------------------------
#
# Factory contract: factory(platform) -> LatencyEstimator.  Plans name
# estimation back-ends by these keys (repro.plans.SearchPlan.estimator).

from repro.registry import ESTIMATORS


@ESTIMATORS.register(ANALYTICAL)
def _analytical_factory(platform: Platform) -> LatencyEstimator:
    """Closed-form FNAS-Analyzer back-end (the search-loop default)."""
    return LatencyEstimator(platform, method=ANALYTICAL)


@ESTIMATORS.register(SIMULATE)
def _simulate_factory(platform: Platform) -> LatencyEstimator:
    """Cycle-accurate simulator back-end (validation-grade, slower)."""
    return LatencyEstimator(platform, method=SIMULATE)
