"""FNAS: FPGA-implementation aware neural architecture search.

A from-scratch reproduction of Jiang et al., "Accuracy vs. Efficiency:
Achieving Both through FPGA-Implementation Aware Neural Architecture
Search" (DAC 2019).

Public API tour:

* ``repro.plans``      -- the declarative RunPlan tree (``SearchPlan``,
  ``ExecutionPolicy``, ``ScenarioPlan``): one serializable description
  of any run, JSON round-trippable.
* ``repro.api``        -- the ``Session`` facade executing plans, with
  progress-event subscription, plus the registry-driven component
  builders.
* ``repro.registry``   -- string-keyed registries for controllers,
  evaluators, estimators, datasets and devices; third-party components
  register via a decorator and become addressable from any plan.
* ``repro.core``       -- architectures, search space, RNN controller,
  the NAS baseline and the FNAS search loop.
* ``repro.fpga``       -- FPGA device models, multi-FPGA platforms and
  the FNAS-Design tiling engine.
* ``repro.taskgraph``  -- the tile-based task graph (FNAS-GG).
* ``repro.scheduling`` -- FNAS-Sched, the fixed-order baseline and the
  cycle-accurate pipeline simulator.
* ``repro.latency``    -- the closed-form FNAS-Analyzer and the
  architecture -> milliseconds estimation facade.
* ``repro.nn``         -- NumPy CNN training substrate.
* ``repro.datasets``   -- synthetic MNIST / CIFAR-10 / ImageNet.
* ``repro.surrogate``  -- calibrated accuracy / search-cost models.
* ``repro.experiments``-- runners that regenerate every table and
  figure of the paper's evaluation.
* ``repro.orchestration`` -- checkpointable, sharded, resumable
  search campaigns (``ShardSpec`` grids, the ``Campaign`` runner and
  its merged Pareto frontier).
"""

from repro.api import Session, SessionEvent, run_plan
from repro.events import Event, EventBus
from repro.core import (
    Architecture,
    ConvLayerSpec,
    FnasReward,
    FnasSearch,
    LstmController,
    NasSearch,
    SearchResult,
    SearchSpace,
    SurrogateAccuracyEvaluator,
    TabularController,
    TrainedAccuracyEvaluator,
)
from repro.fpga import (
    PYNQ_Z1,
    XC7A50T,
    XC7Z020,
    XCZU9EG,
    FpgaDevice,
    Platform,
    TilingDesigner,
    get_device,
)
from repro.latency import FnasAnalyzer, LatencyEstimator
from repro.plans import (
    ExecutionPolicy,
    RunPlan,
    ScenarioPlan,
    SearchPlan,
    load_plan,
    plan_hash,
    save_plan,
)
from repro.service import SearchService
from repro.registry import (
    CONTROLLERS,
    DATASETS,
    DEVICES,
    ESTIMATORS,
    EVALUATORS,
    Registry,
)
from repro.scheduling import FixedScheduler, FnasScheduler, PipelineSimulator
from repro.taskgraph import TaskGraphGenerator

__version__ = "2.0.0"

__all__ = [
    "CONTROLLERS",
    "DATASETS",
    "DEVICES",
    "ESTIMATORS",
    "EVALUATORS",
    "Event",
    "EventBus",
    "ExecutionPolicy",
    "Registry",
    "RunPlan",
    "ScenarioPlan",
    "SearchPlan",
    "SearchService",
    "Session",
    "SessionEvent",
    "load_plan",
    "plan_hash",
    "run_plan",
    "save_plan",
    "Architecture",
    "ConvLayerSpec",
    "FnasReward",
    "FnasSearch",
    "LstmController",
    "NasSearch",
    "SearchResult",
    "SearchSpace",
    "SurrogateAccuracyEvaluator",
    "TabularController",
    "TrainedAccuracyEvaluator",
    "PYNQ_Z1",
    "XC7A50T",
    "XC7Z020",
    "XCZU9EG",
    "FpgaDevice",
    "Platform",
    "TilingDesigner",
    "get_device",
    "FnasAnalyzer",
    "LatencyEstimator",
    "FixedScheduler",
    "FnasScheduler",
    "PipelineSimulator",
    "TaskGraphGenerator",
    "__version__",
]
