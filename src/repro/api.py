"""The Session facade: run any declarative plan through one front door.

:class:`Session` executes a :class:`~repro.plans.RunPlan`::

    from repro.api import Session
    from repro.plans import RunPlan, SearchPlan

    plan = RunPlan(workload="table1", search=SearchPlan(trials=10, seed=3))
    result = Session.from_plan(plan).run()
    print(result.format())

Every public entry point of the repo -- the CLI verbs, the table/figure
runners, sweep campaigns, the orchestration shards, the job service --
lowers to a plan and funnels through here, so there is exactly one way
a run is built: the component **builders** below resolve the plan's
registry keys (:mod:`repro.registry`) into live controller / evaluator /
estimator / platform objects.  Third-party components therefore plug
into every workload by registering a key; no signature changes
anywhere.

Since the service redesign, :meth:`Session.run` is a thin synchronous
wrapper over a one-job :class:`~repro.service.SearchService`: the
session submits its plan, blocks on the job, and re-raises any
failure -- so the interactive path and the queued path share one
execution engine (:func:`repro.service.executor.execute_plan`).

Sessions also expose a progress stream: :meth:`Session.subscribe`
callbacks receive the typed :mod:`repro.events` records -- workload
start/finish, per-search and per-shard events, and the service's job
lifecycle.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.configs import ExperimentConfig, get_config
from repro.core.evaluator import AccuracyEvaluator, ParallelEvaluator
from repro.core.search import FnasSearch, NasSearch, Search
from repro.core.search_space import SearchSpace
from repro.events import Event, legacy_event
from repro.fpga.platform import Platform
from repro.latency.estimator import LatencyEstimator
from repro.plans import RunPlan, ScenarioPlan, SearchPlan
from repro.registry import CONTROLLERS, DEVICES, ESTIMATORS, EVALUATORS

#: Progress notifications are typed :mod:`repro.events` records now;
#: the pre-service ``SessionEvent`` name remains as an alias of the
#: shared base class.  Events keep ``.kind`` / ``.scope`` /
#: ``.message``, so callbacks reading them are unaffected; code that
#: constructed SessionEvents must build the typed classes instead
#: (``kind`` is a class attribute now, not a constructor argument).
SessionEvent = Event

ProgressCallback = Callable[[Event], None]


# --- Component builders ----------------------------------------------------


def build_controller(search: SearchPlan, space: SearchSpace,
                     seed: int | None = None):
    """Resolve the plan's controller key into a live controller.

    ``seed`` overrides the plan seed (paired runs derive one controller
    per search as ``seed + spec offset``).
    """
    factory = CONTROLLERS[search.controller]
    return factory(space, search.seed if seed is None else seed)


def build_evaluator(
    search: SearchPlan,
    space: SearchSpace,
    config: ExperimentConfig,
    seed: int,
) -> AccuracyEvaluator:
    """Resolve the plan's evaluator key into a live evaluator."""
    factory = EVALUATORS[search.evaluator]
    return factory(space, config, seed)


def build_estimator(search: SearchPlan, platform: Platform) -> LatencyEstimator:
    """Resolve the plan's estimator key into a live latency estimator."""
    factory = ESTIMATORS[search.estimator]
    return factory(platform)


def build_platform(scenario: ScenarioPlan, device: str | None = None) -> Platform:
    """Build the (multi-board) platform a scenario targets.

    ``device`` picks one of the scenario's devices (default: its
    first); ``scenario.boards`` replicates it.
    """
    if device is None:
        if not scenario.devices:
            raise ValueError("the scenario names no devices")
        device = scenario.devices[0]
    return Platform.replicated(DEVICES[device], scenario.boards)


def landscape_seed(plan: RunPlan) -> int:
    """The surrogate-landscape seed a plan pins.

    ``scenario.surrogate_seed`` when set; otherwise the search seed, so
    a single run's landscape follows its seed by default.
    """
    if plan.scenario.surrogate_seed is not None:
        return plan.scenario.surrogate_seed
    return plan.search.seed


def build_search(plan: RunPlan) -> Search:
    """Build the single search a one-scenario plan describes.

    The scenario must name exactly one dataset and one device, and
    either one timing spec (an FNAS search) or none with
    ``include_nas`` (the NAS baseline).  Everything is derived
    deterministically from the plan, so any process builds the
    identical search -- the property shard distribution rests on.
    """
    scenario = plan.scenario
    if len(scenario.datasets) != 1 or len(scenario.devices) != 1:
        raise ValueError(
            "build_search needs a single-scenario plan (one dataset, one "
            f"device), got datasets={scenario.datasets} "
            f"devices={scenario.devices}"
        )
    if len(scenario.specs_ms) > 1:
        raise ValueError(
            f"build_search builds one search; got specs {scenario.specs_ms}"
        )
    if not scenario.specs_ms and not scenario.include_nas:
        raise ValueError(
            "a single-search scenario needs one timing spec (FNAS) or "
            "include_nas=True (the NAS baseline)"
        )
    search = plan.search
    config = get_config(scenario.datasets[0])
    space = SearchSpace.from_config(config)
    evaluator = build_evaluator(search, space, config, landscape_seed(plan))
    if plan.execution.eval_workers > 1:
        evaluator = ParallelEvaluator(
            evaluator, max_workers=plan.execution.eval_workers
        )
    platform = build_platform(scenario)
    estimator = build_estimator(search, platform)
    controller = build_controller(search, space)
    if not scenario.specs_ms:
        return NasSearch(
            space,
            evaluator,
            controller=controller,
            latency_estimator=estimator,
        )
    return FnasSearch(
        space,
        evaluator,
        estimator,
        required_latency_ms=scenario.specs_ms[0],
        controller=controller,
        min_latency_fallback=search.min_latency_fallback,
    )


# --- The facade ------------------------------------------------------------


class Session:
    """One run of one plan, with progress-event subscription.

    Parameters:
        plan: the declarative run description.
        evaluator: optional live evaluator overriding the plan's
            registry key -- the escape hatch for component instances
            that cannot be named by a string (a pre-trained evaluator,
            a test double).  Only valid for in-process execution; the
            campaign runtime rebuilds components from the plan alone.
    """

    def __init__(self, plan: RunPlan, evaluator: AccuracyEvaluator | None = None):
        self.plan = plan
        self._evaluator = evaluator
        self._subscribers: list[ProgressCallback] = []

    @classmethod
    def from_plan(
        cls, plan: RunPlan, evaluator: AccuracyEvaluator | None = None
    ) -> "Session":
        """The canonical constructor: ``Session.from_plan(plan).run()``."""
        return cls(plan, evaluator=evaluator)

    def subscribe(self, callback: ProgressCallback) -> ProgressCallback:
        """Register a progress callback; returns it for unsubscribing."""
        self._subscribers.append(callback)
        return callback

    def unsubscribe(self, callback: ProgressCallback) -> None:
        """Remove a previously subscribed callback."""
        self._subscribers.remove(callback)

    def emit(self, kind: str, scope: str, message: str) -> None:
        """Deliver one string-kind event to every subscriber.

        Kept from the pre-typed-events surface; builds the matching
        typed event (:func:`repro.events.legacy_event`) and delivers
        it in subscribe order.
        """
        self._deliver(legacy_event(kind, scope, message))

    def run(self) -> Any:
        """Execute the plan's workload and return its result object.

        A thin synchronous wrapper over a one-job
        :class:`~repro.service.SearchService`: the plan is submitted,
        the session blocks on the job, progress events stream to the
        session's subscribers, and a failed job re-raises its original
        exception.  Result caching is off -- an interactive run always
        executes.

        Result types by workload: ``table1`` -> ``Table1Result``,
        ``figure6`` -> ``Figure6Result``, ``figure7`` ->
        ``Figure7Result``, ``figure8`` -> ``Figure8Result``,
        ``ablations`` -> ``(ReuseAblationResult, PruningAblationResult)``,
        ``report`` -> the markdown text (also written to
        ``plan.output`` when set), ``sweep`` -> ``CampaignResult``
        (artifact written to ``plan.output`` when set), ``paired`` ->
        ``PairedSearchOutcome``, ``search`` -> ``SearchResult``.
        """
        from repro.service import SearchService

        service = SearchService(workers=1, cache_results=False)
        service.bus.subscribe(self._deliver)
        try:
            handle = service.submit(self.plan, evaluator=self._evaluator)
            return handle.result()
        finally:
            service.shutdown(wait=True)

    # -- internals -----------------------------------------------------------

    def _deliver(self, event: Event) -> None:
        """Fan one typed event out to the session's subscribers."""
        for callback in list(self._subscribers):
            callback(event)


def run_plan(plan: RunPlan, evaluator: AccuracyEvaluator | None = None) -> Any:
    """One-call convenience: ``Session.from_plan(plan).run()``."""
    return Session.from_plan(plan, evaluator=evaluator).run()


def resolve_execution(
    batch_size: int = 1,
    eval_workers: int | None = None,
    shard_workers: int = 1,
    checkpoint_dir: Any = None,
    checkpoint_every: int | None = None,
    parallel_workers: int | None = None,  # deprecated alias: eval_workers
    campaign_dir: Any = None,  # deprecated alias: checkpoint_dir
) -> "ExecutionPolicy":
    """Merge legacy kwarg spellings into one :class:`ExecutionPolicy`.

    The deprecation shim behind the pre-plan entry points: canonical
    names win when both spellings are given, deprecated ones warn.
    """
    import warnings

    from repro.plans import ExecutionPolicy

    if parallel_workers not in (None, 1):  # deprecated: silent at the default
        warnings.warn(
            "parallel_workers is deprecated; use eval_workers "  # deprecated
            "(ExecutionPolicy.eval_workers)",
            DeprecationWarning,
            stacklevel=3,
        )
        if eval_workers is None:
            eval_workers = parallel_workers  # deprecated alias wins only alone
    if campaign_dir is not None:  # deprecated alias
        warnings.warn(
            "campaign_dir is deprecated; use checkpoint_dir "  # deprecated
            "(ExecutionPolicy.checkpoint_dir)",
            DeprecationWarning,
            stacklevel=3,
        )
        if checkpoint_dir is None:
            checkpoint_dir = campaign_dir  # deprecated alias wins only alone
    return ExecutionPolicy(
        batch_size=batch_size,
        eval_workers=1 if eval_workers is None else eval_workers,
        shard_workers=shard_workers,
        checkpoint_dir=None if checkpoint_dir is None else str(checkpoint_dir),
        checkpoint_every=checkpoint_every,
    )
