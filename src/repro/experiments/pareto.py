"""Accuracy-latency Pareto exploration (extension).

The paper notes that "the flexibility of FNAS provides more choices for
designers": one search per timing spec yields one point each.  This
module computes the whole accuracy-latency trade-off curve of a search
space directly — exhaustively for enumerable spaces (MNIST: 6561
architectures), sampled otherwise — using the same estimator/surrogate
pair the searches use.  Each FNAS result can then be judged against the
true frontier: how much accuracy was left on the table at its spec?

:func:`frontier_from_trials` serves the campaign runner: it folds the
trial ledgers of many sharded searches into one non-dominated set, the
campaign-level view of everything the fleet discovered.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.core.architecture import Architecture
from repro.core.evaluator import AccuracyEvaluator, SurrogateAccuracyEvaluator
from repro.core.search import TrialRecord
from repro.core.search_space import SearchSpace
from repro.experiments.reporting import format_table
from repro.fpga.platform import Platform
from repro.latency.estimator import LatencyEstimator

#: Spaces up to this size are enumerated exactly.
ENUMERATION_LIMIT = 10_000


@dataclass(frozen=True)
class ParetoPoint:
    """One non-dominated (latency, accuracy) architecture."""

    architecture: Architecture
    latency_ms: float
    accuracy: float


@dataclass
class ParetoFront:
    """The non-dominated set, sorted by latency ascending."""

    points: list[ParetoPoint]
    evaluated_count: int
    exhaustive: bool

    def best_accuracy_within(self, latency_ms: float) -> float:
        """Frontier accuracy at a latency budget.

        Raises ``ValueError`` when no point meets the budget.
        """
        feasible = [p for p in self.points if p.latency_ms <= latency_ms]
        if not feasible:
            raise ValueError(
                f"no architecture on the frontier meets {latency_ms}ms"
            )
        return max(p.accuracy for p in feasible)

    def regret(self, accuracy: float, latency_ms: float) -> float:
        """Accuracy gap between a search result and the frontier."""
        return self.best_accuracy_within(latency_ms) - accuracy

    def format(self, max_rows: int = 20) -> str:
        """Render the frontier (down-sampled if long)."""
        points = self.points
        if len(points) > max_rows:
            idx = np.linspace(0, len(points) - 1, max_rows).astype(int)
            points = [points[i] for i in idx]
        headers = ["Lat(ms)", "Acc", "Architecture"]
        rows = [
            [f"{p.latency_ms:.2f}", f"{100 * p.accuracy:.2f}%",
             p.architecture.describe()]
            for p in points
        ]
        return format_table(headers, rows)


def compute_pareto_front(
    space: SearchSpace,
    platform: Platform,
    evaluator: AccuracyEvaluator | None = None,
    samples: int = 2000,
    seed: int = 0,
) -> ParetoFront:
    """Compute the accuracy-latency frontier of ``space`` on ``platform``."""
    if evaluator is None:
        evaluator = SurrogateAccuracyEvaluator(space, seed=seed)
    estimator = LatencyEstimator(platform)
    if space.size <= ENUMERATION_LIMIT:
        candidates = list(space.enumerate_architectures())
        exhaustive = True
    else:
        rng = np.random.default_rng(seed)
        seen: dict[str, Architecture] = {}
        for _ in range(samples):
            arch = space.random_architecture(rng)
            seen.setdefault(arch.fingerprint(), arch)
        candidates = list(seen.values())
        exhaustive = False
    scored = [
        (estimator.estimate(arch).ms, evaluator.evaluate(arch).accuracy, arch)
        for arch in candidates
    ]
    return ParetoFront(
        points=_dominance_sweep(scored),
        evaluated_count=len(candidates),
        exhaustive=exhaustive,
    )


def _dominance_sweep(
    scored: list[tuple[float, float, Architecture]]
) -> list[ParetoPoint]:
    """Non-dominated subset of (latency, accuracy, architecture) triples.

    Sorting by (latency asc, accuracy desc) and keeping strict accuracy
    improvements yields the frontier in one pass; the sort is stable, so
    ties resolve to the earliest input triple and the result is
    deterministic for any input order of equals.
    """
    ordered = sorted(scored, key=lambda t: (t[0], -t[1]))
    frontier: list[ParetoPoint] = []
    best_acc = -1.0
    for latency, accuracy, arch in ordered:
        if accuracy > best_acc:
            frontier.append(ParetoPoint(
                architecture=arch, latency_ms=latency, accuracy=accuracy))
            best_acc = accuracy
    return frontier


def frontier_from_trials(trials: Iterable[TrialRecord]) -> ParetoFront:
    """Pareto frontier of already-evaluated search trials.

    Used by the campaign runner to merge shard ledgers: every trained
    trial with a latency estimate is a candidate point; pruned trials
    (no accuracy) contribute nothing.  Merging is order-independent up
    to ties, which resolve to the first trial seen, so merging shards
    in their deterministic grid order gives the same frontier as any
    serial run would.
    """
    scored = [
        (t.latency_ms, t.accuracy, t.architecture)
        for t in trials
        if t.accuracy is not None and t.latency_ms is not None
    ]
    return ParetoFront(
        points=_dominance_sweep(scored),
        evaluated_count=len(scored),
        exhaustive=False,
    )
