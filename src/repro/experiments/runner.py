"""Shared experiment plumbing: paired NAS / FNAS runs on one setup.

:func:`run_paired_search` is the engine behind Table 1 and Figures 6/7.
It has two execution modes:

* the default in-process mode, which runs the NAS baseline and each
  FNAS spec sequentially (with PR 1's batched/parallel options), and
* **campaign mode** (``campaign_dir`` and/or ``shard_workers > 1``),
  which expresses the same runs as orchestration shards: each search
  becomes a checkpointed, resumable shard, optionally fanned across a
  process pool.  Re-invoking with the same ``campaign_dir`` resumes
  interrupted searches from their snapshots, making every table/figure
  regeneration a durable campaign.  Both modes produce identical trial
  ledgers (pinned by tests), so campaign mode is purely an execution
  policy.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.core.controller import Controller, LstmController
from repro.core.evaluator import (
    AccuracyEvaluator,
    ParallelEvaluator,
    SurrogateAccuracyEvaluator,
)
from repro.core.search import FnasSearch, NasSearch, SearchResult
from repro.core.search_space import SearchSpace
from repro.experiments.configs import ExperimentConfig, get_config
from repro.fpga.device import DEVICE_CATALOG
from repro.fpga.platform import Platform
from repro.latency.estimator import LatencyEstimator


@dataclass
class PairedSearchOutcome:
    """One NAS baseline run plus FNAS runs at several timing specs."""

    config: ExperimentConfig
    platform: Platform
    nas: SearchResult
    fnas: dict[float, SearchResult]  # keyed by required latency (ms)

    @property
    def nas_best_accuracy(self) -> float:
        """Accuracy of the NAS baseline's best child."""
        return self.nas.best().accuracy

    @property
    def nas_best_latency_ms(self) -> float:
        """Latency of the NAS baseline's best child."""
        latency = self.nas.best().latency_ms
        assert latency is not None  # runner always attaches an estimator
        return latency


def make_controller(space: SearchSpace, seed: int) -> Controller:
    """The default controller used across experiments."""
    return LstmController(space, seed=seed)


def run_paired_search(
    dataset: str,
    platform: Platform,
    specs_ms: list[float],
    trials: int | None = None,
    seed: int = 0,
    evaluator: AccuracyEvaluator | None = None,
    batch_size: int = 1,
    parallel_workers: int = 1,
    campaign_dir: str | Path | None = None,
    shard_workers: int = 1,
) -> PairedSearchOutcome:
    """Run NAS once and FNAS once per timing spec on one dataset/platform.

    Each search gets its own controller and RNG stream (all derived from
    ``seed``) so runs are independent, reproducible, and comparable --
    the protocol behind Table 1 and Figures 6/7.

    ``trials`` defaults to the dataset's Table 2 trial count;
    ``evaluator`` defaults to the calibrated surrogate (pass a
    :class:`~repro.core.evaluator.TrainedAccuracyEvaluator` for real
    NumPy training).  ``batch_size`` drives the searches' batched
    runtime (1 reproduces the published sequential trajectories);
    ``parallel_workers > 1`` additionally fans each batch's child
    evaluations across a process pool.

    ``campaign_dir`` and/or ``shard_workers > 1`` switch to campaign
    mode: the NAS baseline and each FNAS spec become orchestration
    shards -- checkpointed under ``campaign_dir``, resumable by
    re-invoking with the same directory, and fanned across
    ``shard_workers`` processes.  Ledgers are identical to the default
    mode's; campaign mode requires the default surrogate evaluator and
    a single-catalog-device platform.
    """
    if campaign_dir is not None or shard_workers > 1:
        return _run_paired_campaign(
            dataset, platform, specs_ms, trials, seed, evaluator,
            batch_size, parallel_workers, campaign_dir, shard_workers,
        )
    config = get_config(dataset)
    space = SearchSpace.from_config(config)
    n_trials = trials if trials is not None else config.trials
    if evaluator is None:
        evaluator = SurrogateAccuracyEvaluator(space, config=config, seed=seed)
    pool: ParallelEvaluator | None = None
    if parallel_workers > 1:
        evaluator = pool = ParallelEvaluator(
            evaluator, max_workers=parallel_workers
        )
    estimator = LatencyEstimator(platform)

    try:
        nas = NasSearch(
            space,
            evaluator,
            controller=make_controller(space, seed),
            latency_estimator=estimator,
        ).run(n_trials, np.random.default_rng(seed), batch_size=batch_size)

        fnas_results: dict[float, SearchResult] = {}
        for offset, spec in enumerate(specs_ms, start=1):
            search = FnasSearch(
                space,
                evaluator,
                estimator,
                required_latency_ms=spec,
                controller=make_controller(space, seed + offset),
                min_latency_fallback=True,
            )
            fnas_results[spec] = search.run(
                n_trials, np.random.default_rng(seed + offset),
                batch_size=batch_size,
            )
    finally:
        if pool is not None:
            pool.close()
    return PairedSearchOutcome(
        config=config, platform=platform, nas=nas, fnas=fnas_results
    )


def _campaign_device(platform: Platform) -> tuple[str, int]:
    """Map a platform onto (catalog device name, board count).

    Campaign shards are plain data, so the platform must be expressible
    as N copies of one catalog device -- which covers every platform the
    paper's experiments use.
    """
    names = {d.name for d in platform.devices}
    if len(names) != 1:
        raise ValueError(
            "campaign mode needs a homogeneous platform, got devices "
            + ", ".join(sorted(names))
        )
    name = next(iter(names))
    if name not in DEVICE_CATALOG:
        raise ValueError(
            f"campaign mode needs a catalog device, got {name!r} "
            f"(known: {', '.join(sorted(DEVICE_CATALOG))})"
        )
    return name, len(platform.devices)


def _run_paired_campaign(
    dataset: str,
    platform: Platform,
    specs_ms: list[float],
    trials: int | None,
    seed: int,
    evaluator: AccuracyEvaluator | None,
    batch_size: int,
    parallel_workers: int,
    campaign_dir: str | Path | None,
    shard_workers: int,
) -> PairedSearchOutcome:
    """Campaign-mode body of :func:`run_paired_search`.

    Builds one NAS shard plus one FNAS shard per spec with exactly the
    seeds the in-process mode uses (controller ``seed + offset``, one
    shared surrogate landscape at ``seed``), so the merged outcome's
    ledgers match the serial mode byte for byte.
    """
    from repro.orchestration import Campaign, ShardSpec

    if evaluator is not None:
        raise ValueError(
            "campaign mode rebuilds the surrogate evaluator inside each "
            "shard; pass evaluator=None (or run without campaign_dir / "
            "shard_workers)"
        )
    config = get_config(dataset)
    device, boards = _campaign_device(platform)
    n_trials = trials if trials is not None else config.trials
    common = dict(
        dataset=dataset,
        device=device,
        boards=boards,
        surrogate_seed=seed,
        trials=n_trials,
        batch_size=batch_size,
        eval_workers=max(1, parallel_workers),
    )
    shards = [ShardSpec(kind="nas", seed=seed, **common)]
    for offset, spec in enumerate(specs_ms, start=1):
        shards.append(
            ShardSpec(kind="fnas", spec_ms=spec, seed=seed + offset, **common)
        )
    outcome = Campaign(shards, checkpoint_dir=campaign_dir).run(
        max_workers=shard_workers
    )
    nas = outcome.outcomes[0].result
    fnas_results = {
        spec: outcome.outcomes[i].result
        for i, spec in enumerate(specs_ms, start=1)
    }
    return PairedSearchOutcome(
        config=config, platform=platform, nas=nas, fnas=fnas_results
    )
