"""The paired-search engine: one NAS baseline plus FNAS runs per spec.

:func:`run_paired_plan` is the engine behind Table 1 and Figures 6/7.
It consumes a declarative :class:`~repro.plans.RunPlan` -- the search
configuration (controller / evaluator / estimator registry keys, seed,
trials) comes from ``plan.search`` and the execution policy (batching,
evaluation workers, checkpointing, shard fan-out) from
``plan.execution`` -- and has two execution modes:

* the default in-process mode, which runs the NAS baseline and each
  FNAS spec sequentially (with the batched/parallel options), and
* **campaign mode** (``plan.execution.campaign_mode``), which expresses
  the same runs as orchestration shards: each search becomes a
  checkpointed, resumable shard, optionally fanned across a process
  pool.  Re-invoking with the same checkpoint directory resumes
  interrupted searches.  Both modes produce identical trial ledgers
  (pinned by tests), so campaign mode is purely an execution policy.

:func:`run_paired_search` remains as the legacy kwarg entry point -- a
thin deprecation shim that lowers its arguments onto a plan and calls
the engine.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from repro.api import (
    build_controller,
    build_estimator,
    build_evaluator,
    landscape_seed,
    resolve_execution,
)
from repro.core.evaluator import AccuracyEvaluator, ParallelEvaluator
from repro.core.search import FnasSearch, NasSearch, SearchResult
from repro.core.search_space import SearchSpace
from repro.experiments.configs import ExperimentConfig, get_config
from repro.fpga.device import DEVICE_CATALOG
from repro.fpga.platform import Platform
from repro.plans import RunPlan, ScenarioPlan, SearchPlan, spec_key

#: Signature of the progress emitter threaded through the engine
#: (kind, scope, message) -- :meth:`repro.api.Session.emit` satisfies it.
EmitFn = Callable[[str, str, str], None]


@dataclass
class PairedSearchOutcome:
    """One NAS baseline run plus FNAS runs at several timing specs."""

    config: ExperimentConfig
    platform: Platform
    nas: SearchResult
    fnas: dict[float, SearchResult]  # keyed by required latency (ms)

    @property
    def nas_best_accuracy(self) -> float:
        """Accuracy of the NAS baseline's best child."""
        return self.nas.best().accuracy

    @property
    def nas_best_latency_ms(self) -> float:
        """Latency of the NAS baseline's best child."""
        latency = self.nas.best().latency_ms
        assert latency is not None  # runner always attaches an estimator
        return latency

    def fnas_for(self, spec_ms: float | str) -> SearchResult:
        """Tolerant FNAS lookup by timing spec.

        ``fnas`` is keyed by raw floats, which is exact-match hostile:
        JSON round-trips stringify keys, and a spec recomputed through
        string formatting may differ in the last ulp.  This accepts a
        float or its string form and matches with a relative tolerance,
        raising a listing ``KeyError`` when nothing is close.
        """
        target = float(spec_ms)
        result = self.fnas.get(target)
        if result is not None:
            return result
        for key, candidate in self.fnas.items():
            if math.isclose(key, target, rel_tol=1e-9, abs_tol=1e-12):
                return candidate
        known = ", ".join(spec_key(k) for k in sorted(self.fnas))
        raise KeyError(f"no FNAS run at {spec_ms!r} ms; specs: {known}")

    def to_dict(self) -> dict[str, Any]:
        """JSON-compatible form with stable *string* spec keys.

        FNAS results are keyed by :func:`repro.plans.spec_key` strings
        (``"2.5"``, ``"10"``) so the document round-trips through JSON
        without float-key mangling; :meth:`from_dict` restores the
        float-keyed mapping.
        """
        from repro.core.serialization import search_result_to_dict

        return {
            "dataset": self.config.dataset,
            "devices": [d.name for d in self.platform.devices],
            "nas": search_result_to_dict(self.nas),
            "fnas": {
                spec_key(spec): search_result_to_dict(result)
                for spec, result in self.fnas.items()
            },
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "PairedSearchOutcome":
        """Rebuild an outcome from :meth:`to_dict` (catalog platforms)."""
        from repro.core.serialization import search_result_from_dict
        from repro.fpga.device import get_device

        devices = [get_device(name) for name in data["devices"]]
        return cls(
            config=get_config(data["dataset"]),
            platform=Platform(devices=tuple(devices)),
            nas=search_result_from_dict(data["nas"]),
            fnas={
                float(key): search_result_from_dict(result)
                for key, result in data["fnas"].items()
            },
        )


def make_controller(space: SearchSpace, seed: int):
    """The default controller used across experiments (registry ``lstm``)."""
    return build_controller(SearchPlan(seed=seed), space)


def run_paired_plan(
    plan: RunPlan,
    dataset: str | None = None,
    platform: Platform | None = None,
    specs_ms: list[float] | None = None,
    evaluator: AccuracyEvaluator | None = None,
    emit: EmitFn | None = None,
    should_stop: Callable[[], bool] | None = None,
) -> PairedSearchOutcome:
    """Run NAS once and FNAS once per timing spec on one dataset/platform.

    The plan's scenario supplies the dataset, device and specs unless
    the explicit arguments override them (the figure runners iterate
    over devices/datasets and pass each explicitly; overrides also
    admit non-catalog :class:`~repro.fpga.platform.Platform` objects,
    which plain plan data cannot name).

    Each search gets its own controller and RNG stream (all derived
    from ``plan.search.seed``) so runs are independent, reproducible
    and comparable -- the protocol behind Table 1 and Figures 6/7.
    ``evaluator`` overrides the plan's evaluator key with a live
    instance (in-process mode only).  ``emit`` receives per-search
    progress events.  ``should_stop`` cancels cooperatively between
    trials (:class:`~repro.core.search.SearchCancelled`; snapshots
    first when the execution policy checkpoints).
    """
    scenario = plan.scenario
    if dataset is None:
        if not scenario.datasets:
            raise ValueError("the plan's scenario names no datasets")
        dataset = scenario.datasets[0]
    if platform is None:
        from repro.api import build_platform

        platform = build_platform(scenario)
    if specs_ms is None:
        specs_ms = list(scenario.specs_ms)
    if plan.execution.campaign_mode:
        return _run_paired_campaign(
            plan, dataset, platform, specs_ms, evaluator, emit,
            should_stop=should_stop,
        )
    search_plan = plan.search
    config = get_config(dataset)
    space = SearchSpace.from_config(config)
    seed = search_plan.seed
    n_trials = (search_plan.trials if search_plan.trials is not None
                else config.trials)
    if evaluator is None:
        evaluator = build_evaluator(
            search_plan, space, config, landscape_seed(plan)
        )
    pool: ParallelEvaluator | None = None
    if plan.execution.eval_workers > 1:
        evaluator = pool = ParallelEvaluator(
            evaluator, max_workers=plan.execution.eval_workers
        )
    estimator = build_estimator(search_plan, platform)

    def _notify(kind: str, name: str, message: str) -> None:
        if emit is not None:
            emit(kind, name, message)

    try:
        _notify("start", "nas", f"{n_trials} trials on {dataset}")
        nas = NasSearch(
            space,
            evaluator,
            controller=build_controller(search_plan, space, seed),
            latency_estimator=estimator,
        ).run(n_trials, np.random.default_rng(seed),
              batch_size=plan.execution.batch_size,
              should_stop=should_stop)
        _notify("finish", "nas", f"{len(nas.trials)} trials")

        fnas_results: dict[float, SearchResult] = {}
        for offset, spec in enumerate(specs_ms, start=1):
            name = f"fnas-{spec_key(spec)}ms"
            _notify("start", name, f"{n_trials} trials on {dataset}")
            search = FnasSearch(
                space,
                evaluator,
                estimator,
                required_latency_ms=spec,
                controller=build_controller(search_plan, space, seed + offset),
                min_latency_fallback=search_plan.min_latency_fallback,
            )
            fnas_results[spec] = search.run(
                n_trials, np.random.default_rng(seed + offset),
                batch_size=plan.execution.batch_size,
                should_stop=should_stop,
            )
            _notify("finish", name, f"{len(fnas_results[spec].trials)} trials")
    finally:
        if pool is not None:
            pool.close()
    return PairedSearchOutcome(
        config=config, platform=platform, nas=nas, fnas=fnas_results
    )


def run_paired_search(
    dataset: str,
    platform: Platform,
    specs_ms: list[float],
    trials: int | None = None,
    seed: int = 0,
    evaluator: AccuracyEvaluator | None = None,
    batch_size: int = 1,
    parallel_workers: int = 1,  # deprecated alias: eval_workers
    campaign_dir: Any = None,  # deprecated alias: checkpoint_dir
    shard_workers: int = 1,
    *,
    eval_workers: int | None = None,
    checkpoint_dir: str | None = None,
    checkpoint_every: int | None = None,
) -> PairedSearchOutcome:
    """Legacy kwarg entry point -- a deprecation shim over the plan API.

    Lowers its arguments onto a :class:`~repro.plans.RunPlan` and calls
    :func:`run_paired_plan`; prefer building the plan yourself and
    running it through :class:`repro.api.Session`.  The old
    ``parallel_workers`` / ``campaign_dir`` spellings (deprecated) work but
    warn; ``eval_workers`` / ``checkpoint_dir`` are the canonical
    names (:class:`~repro.plans.ExecutionPolicy` fields).
    """
    execution = resolve_execution(
        batch_size=batch_size,
        eval_workers=eval_workers,
        shard_workers=shard_workers,
        checkpoint_dir=checkpoint_dir,
        checkpoint_every=checkpoint_every,
        parallel_workers=parallel_workers,  # deprecated passthrough
        campaign_dir=campaign_dir,  # deprecated passthrough
    )
    plan = RunPlan(
        workload="paired",
        search=SearchPlan(seed=seed, trials=trials),
        execution=execution,
        scenario=_scenario_for(dataset, platform, specs_ms),
    )
    return run_paired_plan(
        plan, dataset=dataset, platform=platform, specs_ms=list(specs_ms),
        evaluator=evaluator,
    )


def _scenario_for(
    dataset: str, platform: Platform, specs_ms: list[float]
) -> ScenarioPlan:
    """Best-effort scenario for a legacy call (documents the run).

    Non-catalog platforms cannot be named by plan data; the scenario
    then records no device and the engine uses the explicit platform
    object.
    """
    names = {d.name for d in platform.devices}
    devices: tuple[str, ...] = ()
    boards = 1
    if len(names) == 1 and next(iter(names)) in DEVICE_CATALOG:
        devices = (next(iter(names)),)
        boards = len(platform.devices)
    return ScenarioPlan(
        datasets=(dataset,),
        devices=devices,
        boards=boards,
        specs_ms=tuple(specs_ms),
        include_nas=True,
    )


def _campaign_device(platform: Platform) -> tuple[str, int]:
    """Map a platform onto (catalog device name, board count).

    Campaign shards are plain data, so the platform must be expressible
    as N copies of one catalog device -- which covers every platform the
    paper's experiments use.
    """
    names = {d.name for d in platform.devices}
    if len(names) != 1:
        raise ValueError(
            "campaign mode needs a homogeneous platform, got devices "
            + ", ".join(sorted(names))
        )
    name = next(iter(names))
    if name not in DEVICE_CATALOG:
        raise ValueError(
            f"campaign mode needs a catalog device, got {name!r} "
            f"(known: {', '.join(sorted(DEVICE_CATALOG))})"
        )
    return name, len(platform.devices)


def _run_paired_campaign(
    plan: RunPlan,
    dataset: str,
    platform: Platform,
    specs_ms: list[float],
    evaluator: AccuracyEvaluator | None,
    emit: EmitFn | None,
    should_stop: Callable[[], bool] | None = None,
) -> PairedSearchOutcome:
    """Campaign-mode body of :func:`run_paired_plan`.

    Builds one NAS shard plus one FNAS shard per spec with exactly the
    seeds the in-process mode uses (controller ``seed + offset``, one
    shared surrogate landscape at the base seed), so the merged
    outcome's ledgers match the serial mode byte for byte.
    """
    from repro.orchestration import Campaign, ShardSpec

    if evaluator is not None:
        raise ValueError(
            "campaign mode rebuilds the evaluator from the plan's registry "
            "key inside each shard; pass evaluator=None (or run with an "
            "in-process ExecutionPolicy)"
        )
    config = get_config(dataset)
    device, boards = _campaign_device(platform)
    search_plan = plan.search
    seed = search_plan.seed
    n_trials = (search_plan.trials if search_plan.trials is not None
                else config.trials)
    common = dict(
        dataset=dataset,
        device=device,
        boards=boards,
        surrogate_seed=landscape_seed(plan),
        trials=n_trials,
        batch_size=plan.execution.batch_size,
        eval_workers=max(1, plan.execution.eval_workers),
        controller=search_plan.controller,
        evaluator=search_plan.evaluator,
        estimator=search_plan.estimator,
        min_latency_fallback=search_plan.min_latency_fallback,
    )
    shards = [ShardSpec(kind="nas", seed=seed, **common)]
    for offset, spec in enumerate(specs_ms, start=1):
        shards.append(
            ShardSpec(kind="fnas", spec_ms=spec, seed=seed + offset, **common)
        )
    progress = None
    if emit is not None:
        def progress(event):
            emit(event.kind, event.shard_id, event.message)
    outcome = Campaign(
        shards,
        checkpoint_dir=plan.execution.checkpoint_dir,
        checkpoint_every=plan.execution.checkpoint_every,
        progress=progress,
    ).run(max_workers=plan.execution.shard_workers,
          should_stop=should_stop)
    nas = outcome.outcomes[0].result
    fnas_results = {
        spec: outcome.outcomes[i].result
        for i, spec in enumerate(specs_ms, start=1)
    }
    return PairedSearchOutcome(
        config=config, platform=platform, nas=nas, fnas=fnas_results
    )
