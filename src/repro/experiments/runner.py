"""Shared experiment plumbing: paired NAS / FNAS runs on one setup."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.controller import Controller, LstmController
from repro.core.evaluator import (
    AccuracyEvaluator,
    ParallelEvaluator,
    SurrogateAccuracyEvaluator,
)
from repro.core.search import FnasSearch, NasSearch, SearchResult
from repro.core.search_space import SearchSpace
from repro.experiments.configs import ExperimentConfig, get_config
from repro.fpga.platform import Platform
from repro.latency.estimator import LatencyEstimator


@dataclass
class PairedSearchOutcome:
    """One NAS baseline run plus FNAS runs at several timing specs."""

    config: ExperimentConfig
    platform: Platform
    nas: SearchResult
    fnas: dict[float, SearchResult]  # keyed by required latency (ms)

    @property
    def nas_best_accuracy(self) -> float:
        """Accuracy of the NAS baseline's best child."""
        return self.nas.best().accuracy

    @property
    def nas_best_latency_ms(self) -> float:
        """Latency of the NAS baseline's best child."""
        latency = self.nas.best().latency_ms
        assert latency is not None  # runner always attaches an estimator
        return latency


def make_controller(space: SearchSpace, seed: int) -> Controller:
    """The default controller used across experiments."""
    return LstmController(space, seed=seed)


def run_paired_search(
    dataset: str,
    platform: Platform,
    specs_ms: list[float],
    trials: int | None = None,
    seed: int = 0,
    evaluator: AccuracyEvaluator | None = None,
    batch_size: int = 1,
    parallel_workers: int = 1,
) -> PairedSearchOutcome:
    """Run NAS once and FNAS once per timing spec on one dataset/platform.

    Each search gets its own controller and RNG stream (all derived from
    ``seed``) so runs are independent, reproducible, and comparable --
    the protocol behind Table 1 and Figures 6/7.

    ``trials`` defaults to the dataset's Table 2 trial count;
    ``evaluator`` defaults to the calibrated surrogate (pass a
    :class:`~repro.core.evaluator.TrainedAccuracyEvaluator` for real
    NumPy training).  ``batch_size`` drives the searches' batched
    runtime (1 reproduces the published sequential trajectories);
    ``parallel_workers > 1`` additionally fans each batch's child
    evaluations across a process pool.
    """
    config = get_config(dataset)
    space = SearchSpace.from_config(config)
    n_trials = trials if trials is not None else config.trials
    if evaluator is None:
        evaluator = SurrogateAccuracyEvaluator(space, config=config, seed=seed)
    pool: ParallelEvaluator | None = None
    if parallel_workers > 1:
        evaluator = pool = ParallelEvaluator(
            evaluator, max_workers=parallel_workers
        )
    estimator = LatencyEstimator(platform)

    try:
        nas = NasSearch(
            space,
            evaluator,
            controller=make_controller(space, seed),
            latency_estimator=estimator,
        ).run(n_trials, np.random.default_rng(seed), batch_size=batch_size)

        fnas_results: dict[float, SearchResult] = {}
        for offset, spec in enumerate(specs_ms, start=1):
            search = FnasSearch(
                space,
                evaluator,
                estimator,
                required_latency_ms=spec,
                controller=make_controller(space, seed + offset),
                min_latency_fallback=True,
            )
            fnas_results[spec] = search.run(
                n_trials, np.random.default_rng(seed + offset),
                batch_size=batch_size,
            )
    finally:
        if pool is not None:
            pool.close()
    return PairedSearchOutcome(
        config=config, platform=platform, nas=nas, fnas=fnas_results
    )
