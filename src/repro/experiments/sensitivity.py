"""Seed-sensitivity study: are the headline claims seed-robust?

The paper reports single search runs; RL searches are noisy, so a
reproduction should check that the Table 1 shape (FNAS meets the spec,
speedup grows with tightness, loss < 1%) holds across controller/
sampling seeds and not just for one lucky draw.  This study reruns the
Table 1 protocol over several seeds and aggregates per-spec statistics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.reporting import format_table
from repro.experiments.table1 import TABLE1_SPECS_MS, run_table1


@dataclass(frozen=True)
class SpecStatistics:
    """Across-seed statistics for one timing specification."""

    spec_ms: float
    speedups: tuple[float, ...]
    degradations: tuple[float, ...]
    meets_spec_rate: float

    @property
    def speedup_mean(self) -> float:
        """Mean search-time speedup over NAS."""
        return float(np.mean(self.speedups))

    @property
    def speedup_std(self) -> float:
        """Across-seed standard deviation of the speedup."""
        return float(np.std(self.speedups))

    @property
    def degradation_max(self) -> float:
        """Worst-case accuracy loss across seeds."""
        return float(np.max(self.degradations))


@dataclass
class SensitivityResult:
    """All specs x seeds of the study."""

    seeds: tuple[int, ...]
    stats: list[SpecStatistics]

    def format(self) -> str:
        """Aggregate table."""
        headers = ["TS(ms)", "speedup mean+/-std", "worst deg.",
                   "meets spec"]
        rows = [
            [f"{s.spec_ms:g}",
             f"{s.speedup_mean:.2f}x +/- {s.speedup_std:.2f}",
             f"{100 * s.degradation_max:.2f}%",
             f"{100 * s.meets_spec_rate:.0f}%"]
            for s in self.stats
        ]
        return format_table(headers, rows)

    def shape_holds_everywhere(self) -> bool:
        """The paper's three claims, quantified across every seed."""
        return all(
            s.meets_spec_rate == 1.0
            and s.degradation_max < 0.01
            and min(s.speedups) > 1.0
            for s in self.stats
        )


def run_sensitivity(
    seeds: tuple[int, ...] = (0, 1, 2, 3, 4),
    trials: int | None = None,
    specs_ms: tuple[float, ...] = TABLE1_SPECS_MS,
) -> SensitivityResult:
    """Re-run Table 1 across ``seeds`` and aggregate."""
    if not seeds:
        raise ValueError("need at least one seed")
    per_spec: dict[float, dict[str, list[float]]] = {
        spec: {"speedup": [], "deg": [], "meets": []} for spec in specs_ms
    }
    for seed in seeds:
        table = run_table1(trials=trials, seed=seed, specs_ms=specs_ms)
        for row in table.rows[1:]:
            bucket = per_spec[row.spec_ms]
            bucket["speedup"].append(row.elapsed_improvement)
            bucket["deg"].append(row.accuracy_degradation)
            bucket["meets"].append(
                1.0 if row.latency_ms <= row.spec_ms else 0.0)
    stats = [
        SpecStatistics(
            spec_ms=spec,
            speedups=tuple(per_spec[spec]["speedup"]),
            degradations=tuple(per_spec[spec]["deg"]),
            meets_spec_rate=float(np.mean(per_spec[spec]["meets"])),
        )
        for spec in specs_ms
    ]
    return SensitivityResult(seeds=tuple(seeds), stats=stats)
