"""Table 1: NAS vs FNAS on MNIST targeting the PYNQ board.

Paper columns: method, timing spec (TC, ms), elapsed search time (+
improvement over NAS), latency of the resulting architecture (+
improvement), accuracy (+ degradation).  Paper values for reference::

    NAS          -   190m33s   -      19.70ms  -       99.42%  -
    FNAS  TC=10      74m29s    2.55x  8.67ms   2.27x   99.34%  -0.08%
    FNAS  TC=5       59m19s    3.21x  4.77ms   4.13x   99.18%  -0.24%
    FNAS  TC=2       17m07s    11.13x 1.80ms   10.94x  98.61%  -0.81%
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.api import build_platform, resolve_execution
from repro.core.evaluator import AccuracyEvaluator
from repro.experiments.reporting import format_minutes, format_table, improvement
from repro.experiments.runner import (
    EmitFn,
    PairedSearchOutcome,
    run_paired_plan,
)
from repro.plans import RunPlan, ScenarioPlan, SearchPlan

#: The paper's three timing specifications for Table 1 (ms).
TABLE1_SPECS_MS = (10.0, 5.0, 2.0)


def table1_plan(
    trials: int | None = None,
    seed: int = 0,
    specs_ms: tuple[float, ...] = TABLE1_SPECS_MS,
    execution: Any = None,
) -> RunPlan:
    """The declarative plan behind ``repro table1``.

    MNIST on the PYNQ-Z1 with the paper's three timing specs;
    ``execution`` defaults to the in-process sequential policy.
    """
    plan_kwargs = {} if execution is None else {"execution": execution}
    return RunPlan(
        workload="table1",
        search=SearchPlan(seed=seed, trials=trials),
        scenario=ScenarioPlan(
            datasets=("mnist",),
            devices=("pynq-z1",),
            specs_ms=tuple(specs_ms),
            include_nas=True,
        ),
        **plan_kwargs,
    )


@dataclass(frozen=True)
class Table1Row:
    """One row of Table 1."""

    method: str
    spec_ms: float | None
    elapsed_seconds: float
    elapsed_improvement: float | None
    latency_ms: float
    latency_improvement: float | None
    accuracy: float
    accuracy_degradation: float | None


@dataclass
class Table1Result:
    """All rows plus the raw search outcome."""

    rows: list[Table1Row]
    outcome: PairedSearchOutcome

    def format(self) -> str:
        """Render in the paper's layout."""
        headers = ["Method", "TC(ms)", "Elapsed", "Imp.", "Lat(ms)",
                   "Imp.", "Acc.", "Deg."]
        cells = []
        for row in self.rows:
            cells.append([
                row.method,
                "-" if row.spec_ms is None else f"{row.spec_ms:g}",
                format_minutes(row.elapsed_seconds),
                "-" if row.elapsed_improvement is None
                else f"{row.elapsed_improvement:.2f}x",
                f"{row.latency_ms:.2f}",
                "-" if row.latency_improvement is None
                else f"{row.latency_improvement:.2f}x",
                f"{100 * row.accuracy:.2f}%",
                "-" if row.accuracy_degradation is None
                else f"{-100 * row.accuracy_degradation:.2f}%",
            ])
        return format_table(headers, cells)


def run_table1_plan(
    plan: RunPlan,
    evaluator: AccuracyEvaluator | None = None,
    emit: EmitFn | None = None,
    should_stop=None,
) -> Table1Result:
    """Regenerate Table 1 from its declarative plan.

    The plan-native core: :class:`repro.api.Session` dispatches
    ``workload="table1"`` here.  The scenario's specs default to the
    paper's three; its dataset/device default to MNIST on the PYNQ.
    """
    scenario = plan.scenario
    dataset = scenario.datasets[0] if scenario.datasets else "mnist"
    device = scenario.devices[0] if scenario.devices else "pynq-z1"
    specs_ms = scenario.specs_ms or TABLE1_SPECS_MS
    outcome = run_paired_plan(
        plan,
        dataset=dataset,
        platform=build_platform(scenario, device=device),
        specs_ms=list(specs_ms),
        evaluator=evaluator,
        emit=emit,
        should_stop=should_stop,
    )
    nas_best = outcome.nas.best()
    nas_elapsed = outcome.nas.simulated_seconds
    rows = [
        Table1Row(
            method="NAS",
            spec_ms=None,
            elapsed_seconds=nas_elapsed,
            elapsed_improvement=None,
            latency_ms=outcome.nas_best_latency_ms,
            latency_improvement=None,
            accuracy=nas_best.accuracy,
            accuracy_degradation=None,
        )
    ]
    for spec in specs_ms:
        result = outcome.fnas_for(spec)
        best = result.best_valid(spec)
        rows.append(
            Table1Row(
                method="FNAS",
                spec_ms=spec,
                elapsed_seconds=result.simulated_seconds,
                elapsed_improvement=improvement(
                    nas_elapsed, result.simulated_seconds
                ),
                latency_ms=best.latency_ms,
                latency_improvement=improvement(
                    outcome.nas_best_latency_ms, best.latency_ms
                ),
                accuracy=best.accuracy,
                accuracy_degradation=nas_best.accuracy - best.accuracy,
            )
        )
    return Table1Result(rows=rows, outcome=outcome)


def run_table1(
    trials: int | None = None,
    seed: int = 0,
    specs_ms: tuple[float, ...] = TABLE1_SPECS_MS,
    evaluator: AccuracyEvaluator | None = None,
    batch_size: int = 1,
    parallel_workers: int = 1,  # deprecated alias: eval_workers
    campaign_dir: str | None = None,  # deprecated alias: checkpoint_dir
    shard_workers: int = 1,
    *,
    eval_workers: int | None = None,
    checkpoint_dir: str | None = None,
    checkpoint_every: int | None = None,
) -> Table1Result:
    """Legacy kwarg entry point -- a deprecation shim over the plan API.

    Lowers the arguments onto :func:`table1_plan` and runs it through
    :class:`repro.api.Session`; a checkpoint directory and/or
    ``shard_workers > 1`` run the four searches as a resumable
    campaign.
    """
    from repro.api import Session

    plan = table1_plan(
        trials=trials,
        seed=seed,
        specs_ms=specs_ms,
        execution=resolve_execution(
            batch_size=batch_size,
            eval_workers=eval_workers,
            shard_workers=shard_workers,
            checkpoint_dir=checkpoint_dir,
            checkpoint_every=checkpoint_every,
            parallel_workers=parallel_workers,  # deprecated passthrough
            campaign_dir=campaign_dir,  # deprecated passthrough
        ),
    )
    return Session.from_plan(plan, evaluator=evaluator).run()
