"""One-shot reproduction report generator.

``generate_report()`` runs every experiment (Table 1, Figures 6-8, the
ablations) and renders a single markdown document mirroring
EXPERIMENTS.md's structure -- useful for refreshing the committed
results after model changes, or via ``python -m repro report``.
"""

from __future__ import annotations

import io
import time

from repro.experiments.ablation import run_pruning_ablation, run_reuse_ablation
from repro.experiments.figure6 import run_figure6
from repro.experiments.figure7 import run_figure7
from repro.experiments.figure8 import run_figure8
from repro.experiments.table1 import run_table1


def generate_report(
    trials: int | None = None,
    seed: int = 0,
    batch_size: int = 1,
    parallel_workers: int = 1,
    campaign_dir: str | None = None,
    shard_workers: int = 1,
) -> str:
    """Run everything and return the markdown report text.

    ``campaign_dir`` / ``shard_workers`` run the search-based sections
    (Table 1, Figures 6/7) as resumable campaigns: interrupting the
    report and re-running with the same directory picks up every search
    from its last checkpoint.
    """
    out = io.StringIO()
    write = out.write
    write("# FNAS reproduction report\n\n")
    write(f"seed={seed}, trials={'Table 2 default' if trials is None else trials}\n\n")

    started = time.perf_counter()
    table1 = run_table1(trials=trials, seed=seed, batch_size=batch_size,
                        parallel_workers=parallel_workers,
                        campaign_dir=campaign_dir,
                        shard_workers=shard_workers)
    write("## Table 1 — MNIST on PYNQ\n\n```\n")
    write(table1.format())
    write("\n```\n\n")

    figure6 = run_figure6(trials=trials, seed=seed, batch_size=batch_size,
                          parallel_workers=parallel_workers,
                          campaign_dir=campaign_dir,
                          shard_workers=shard_workers)
    write("## Figure 6 — two FPGAs\n\n```\n")
    write(figure6.format())
    write("\n```\n\n")

    figure7 = run_figure7(trials=trials, seed=seed, batch_size=batch_size,
                          parallel_workers=parallel_workers,
                          campaign_dir=campaign_dir,
                          shard_workers=shard_workers)
    write("## Figure 7 — three datasets\n\n```\n")
    write(figure7.format())
    write("\n```\n\n")

    figure8 = run_figure8()
    write("## Figure 8 — scheduler comparison\n\n```\n")
    write(figure8.format())
    write(f"\nmean improvement: {figure8.mean_improvement_percent:.2f}%\n")
    write("```\n\n")

    reuse = run_reuse_ablation()
    write("## Ablation — reuse strategy x stall policy\n\n```\n")
    write(reuse.format())
    write("\n```\n\n")

    pruning = run_pruning_ablation(trials=trials, seed=seed)
    write("## Ablation — early pruning\n\n```\n")
    write(pruning.format())
    write("\n```\n\n")

    write(f"_generated in {time.perf_counter() - started:.1f}s_\n")
    return out.getvalue()
