"""One-shot reproduction report generator.

``generate_report_plan()`` runs every experiment (Table 1, Figures 6-8,
the ablations) from one declarative plan and renders a single markdown
document mirroring EXPERIMENTS.md's structure -- useful for refreshing
the committed results after model changes, or via
``python -m repro report``.  The search-based sections share the plan's
search and execution policy, so a checkpointing policy makes the whole
report resumable: interrupting and re-running with the same checkpoint
directory picks every search up from its last snapshot.
"""

from __future__ import annotations

import io
import time
from typing import Any

from repro.api import resolve_execution
from repro.experiments.ablation import run_pruning_ablation, run_reuse_ablation
from repro.experiments.figure6 import figure6_plan, run_figure6_plan
from repro.experiments.figure7 import figure7_plan, run_figure7_plan
from repro.experiments.figure8 import run_figure8
from repro.experiments.runner import EmitFn
from repro.experiments.table1 import run_table1_plan, table1_plan
from repro.plans import RunPlan, SearchPlan


def report_plan(
    trials: int | None = None,
    seed: int = 0,
    execution: Any = None,
    output: str | None = None,
) -> RunPlan:
    """The declarative plan behind ``repro report``."""
    plan_kwargs = {} if execution is None else {"execution": execution}
    return RunPlan(
        workload="report",
        search=SearchPlan(seed=seed, trials=trials),
        output=output,
        **plan_kwargs,
    )


def generate_report_plan(plan: RunPlan, emit: EmitFn | None = None) -> str:
    """Run everything the plan describes and return the markdown text.

    The plan-native core: :class:`repro.api.Session` dispatches
    ``workload="report"`` here (and writes ``plan.output`` when set).
    """
    search = plan.search
    out = io.StringIO()
    write = out.write
    write("# FNAS reproduction report\n\n")
    write(f"seed={search.seed}, trials="
          f"{'Table 2 default' if search.trials is None else search.trials}\n\n")

    def section_plan(builder):
        sub = builder(trials=search.trials, seed=search.seed,
                      execution=plan.execution)
        # Carry the full search plan (controller/evaluator/estimator
        # keys) into each section, not just seed and trials.
        return RunPlan(
            workload=sub.workload, search=search, execution=sub.execution,
            scenario=sub.scenario,
        )

    started = time.perf_counter()
    table1 = run_table1_plan(section_plan(table1_plan), emit=emit)
    write("## Table 1 — MNIST on PYNQ\n\n```\n")
    write(table1.format())
    write("\n```\n\n")

    figure6 = run_figure6_plan(section_plan(figure6_plan), emit=emit)
    write("## Figure 6 — two FPGAs\n\n```\n")
    write(figure6.format())
    write("\n```\n\n")

    figure7 = run_figure7_plan(section_plan(figure7_plan), emit=emit)
    write("## Figure 7 — three datasets\n\n```\n")
    write(figure7.format())
    write("\n```\n\n")

    figure8 = run_figure8()
    write("## Figure 8 — scheduler comparison\n\n```\n")
    write(figure8.format())
    write(f"\nmean improvement: {figure8.mean_improvement_percent:.2f}%\n")
    write("```\n\n")

    reuse = run_reuse_ablation()
    write("## Ablation — reuse strategy x stall policy\n\n```\n")
    write(reuse.format())
    write("\n```\n\n")

    pruning = run_pruning_ablation(trials=search.trials, seed=search.seed)
    write("## Ablation — early pruning\n\n```\n")
    write(pruning.format())
    write("\n```\n\n")

    write(f"_generated in {time.perf_counter() - started:.1f}s_\n")
    return out.getvalue()


def generate_report(
    trials: int | None = None,
    seed: int = 0,
    batch_size: int = 1,
    parallel_workers: int = 1,  # deprecated alias: eval_workers
    campaign_dir: str | None = None,  # deprecated alias: checkpoint_dir
    shard_workers: int = 1,
    *,
    eval_workers: int | None = None,
    checkpoint_dir: str | None = None,
    checkpoint_every: int | None = None,
) -> str:
    """Legacy kwarg entry point -- a deprecation shim over the plan API.

    Lowers the arguments onto :func:`report_plan` and runs it through
    :class:`repro.api.Session`.
    """
    from repro.api import Session

    plan = report_plan(
        trials=trials,
        seed=seed,
        execution=resolve_execution(
            batch_size=batch_size,
            eval_workers=eval_workers,
            shard_workers=shard_workers,
            checkpoint_dir=checkpoint_dir,
            checkpoint_every=checkpoint_every,
            parallel_workers=parallel_workers,  # deprecated passthrough
            campaign_dir=campaign_dir,  # deprecated passthrough
        ),
    )
    return Session.from_plan(plan).run()
