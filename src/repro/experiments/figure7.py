"""Figure 7: accuracy loss and search-time reduction vs timing spec.

For each of the three datasets (MNIST on the high-end FPGA, CIFAR-10
and ImageNet on the ZU9EG) and each timing spec TS1 (loosest) .. TS4
(tightest), the figure reports -- relative to the NAS baseline on the
same dataset --

* (a) the accuracy loss of FNAS's best spec-meeting child, and
* (b) the search-time reduction factor.

Expected shape: loss below ~1% everywhere and growing as the spec
tightens; reduction growing as the spec tightens (the paper peaks at
10.4-11.2x depending on dataset).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.api import resolve_execution
from repro.core.evaluator import AccuracyEvaluator
from repro.experiments.configs import get_config
from repro.experiments.reporting import format_table, improvement
from repro.experiments.runner import (
    EmitFn,
    PairedSearchOutcome,
    run_paired_plan,
)
from repro.fpga.device import XC7Z020, XCZU9EG
from repro.fpga.platform import Platform
from repro.plans import RunPlan, ScenarioPlan, SearchPlan

#: Dataset -> device hosting its Figure 7 experiments.
FIGURE7_DEVICES = {
    "mnist": XC7Z020,
    "cifar10": XCZU9EG,
    "imagenet": XCZU9EG,
}


def figure7_plan(
    trials: int | None = None,
    seed: int = 0,
    datasets: tuple[str, ...] = ("mnist", "cifar10", "imagenet"),
    execution: Any = None,
) -> RunPlan:
    """The declarative plan behind ``repro figure7``.

    Three datasets on their paper-assigned devices; the per-dataset
    TS1..TS4 specs come from Table 2 at run time, so the scenario
    leaves ``specs_ms`` empty and the device list is derived from
    :data:`FIGURE7_DEVICES`.
    """
    plan_kwargs = {} if execution is None else {"execution": execution}
    return RunPlan(
        workload="figure7",
        search=SearchPlan(seed=seed, trials=trials),
        scenario=ScenarioPlan(
            datasets=tuple(datasets),
            include_nas=True,
        ),
        **plan_kwargs,
    )


@dataclass(frozen=True)
class Figure7Point:
    """One (dataset, TS) point of both panels."""

    dataset: str
    spec_name: str
    spec_ms: float
    accuracy_loss: float
    time_reduction: float
    fnas_latency_ms: float | None
    found_valid: bool


@dataclass
class Figure7Result:
    """All points plus the raw outcomes."""

    points: list[Figure7Point]
    outcomes: dict[str, PairedSearchOutcome]

    def points_for(self, dataset: str) -> list[Figure7Point]:
        """The four TS points of one dataset, loosest first."""
        return [p for p in self.points if p.dataset == dataset]

    def format(self) -> str:
        """Render both panels as one table."""
        headers = ["Dataset", "TS", "TS(ms)", "AccLoss", "TimeReduction",
                   "FNAS Lat(ms)"]
        rows = []
        for p in self.points:
            rows.append([
                p.dataset,
                p.spec_name,
                f"{p.spec_ms:g}",
                f"{100 * p.accuracy_loss:.2f}%" if p.found_valid else "n/a",
                f"{p.time_reduction:.2f}x",
                f"{p.fnas_latency_ms:.2f}" if p.fnas_latency_ms is not None
                else "n/a",
            ])
        return format_table(headers, rows)


def run_figure7_plan(
    plan: RunPlan,
    evaluator: AccuracyEvaluator | None = None,
    emit: EmitFn | None = None,
    should_stop=None,
) -> Figure7Result:
    """Regenerate Figure 7 from its declarative plan.

    The plan-native core: :class:`repro.api.Session` dispatches
    ``workload="figure7"`` here.  Datasets come from the plan's
    scenario (default: all three); each runs on its paper-assigned
    device from :data:`FIGURE7_DEVICES`.  In campaign mode shard ids
    embed the dataset name, so one checkpoint directory serves all
    three.
    """
    datasets = plan.scenario.datasets or ("mnist", "cifar10", "imagenet")
    points: list[Figure7Point] = []
    outcomes: dict[str, PairedSearchOutcome] = {}
    for dataset in datasets:
        config = get_config(dataset)
        device = FIGURE7_DEVICES[dataset]
        named_specs = config.timing_specs.as_list()
        outcome = run_paired_plan(
            plan,
            dataset=dataset,
            platform=Platform.single(device),
            specs_ms=[ms for _, ms in named_specs],
            evaluator=evaluator,
            emit=emit,
            should_stop=should_stop,
        )
        outcomes[dataset] = outcome
        nas_accuracy = outcome.nas_best_accuracy
        nas_elapsed = outcome.nas.simulated_seconds
        for spec_name, spec_ms in named_specs:
            result = outcome.fnas_for(spec_ms)
            try:
                best = result.best_valid(spec_ms)
                loss = nas_accuracy - best.accuracy
                latency = best.latency_ms
                found = True
            except ValueError:
                loss = float("nan")
                latency = None
                found = False
            points.append(
                Figure7Point(
                    dataset=dataset,
                    spec_name=spec_name,
                    spec_ms=spec_ms,
                    accuracy_loss=loss,
                    time_reduction=improvement(
                        nas_elapsed, result.simulated_seconds
                    ),
                    fnas_latency_ms=latency,
                    found_valid=found,
                )
            )
    return Figure7Result(points=points, outcomes=outcomes)


def run_figure7(
    datasets: tuple[str, ...] = ("mnist", "cifar10", "imagenet"),
    trials: int | None = None,
    seed: int = 0,
    evaluator: AccuracyEvaluator | None = None,
    batch_size: int = 1,
    parallel_workers: int = 1,  # deprecated alias: eval_workers
    campaign_dir: str | None = None,  # deprecated alias: checkpoint_dir
    shard_workers: int = 1,
    *,
    eval_workers: int | None = None,
    checkpoint_dir: str | None = None,
    checkpoint_every: int | None = None,
) -> Figure7Result:
    """Legacy kwarg entry point -- a deprecation shim over the plan API.

    Lowers the arguments onto :func:`figure7_plan` and runs it through
    :class:`repro.api.Session`.
    """
    from repro.api import Session

    plan = figure7_plan(
        trials=trials,
        seed=seed,
        datasets=tuple(datasets),
        execution=resolve_execution(
            batch_size=batch_size,
            eval_workers=eval_workers,
            shard_workers=shard_workers,
            checkpoint_dir=checkpoint_dir,
            checkpoint_every=checkpoint_every,
            parallel_workers=parallel_workers,  # deprecated passthrough
            campaign_dir=campaign_dir,  # deprecated passthrough
        ),
    )
    return Session.from_plan(plan, evaluator=evaluator).run()
