"""Energy-aware FNAS (extension: the paper's motivating metric).

The paper motivates FPGAs with "high performance *and energy
efficiency*" but only constrains latency.  This extension adds an
energy budget to the search: a child is pruned when *either* its
latency or its estimated inference energy violates its budget, and the
satisfaction reward gains a normalised energy-utilisation term, mirror-
symmetric to equation (1)'s latency term::

    R = (rL - L)/rL - 1                        latency violation
    R = (rE - E)/rE - 1                        energy violation
    R = (A - b) + 0.5 * (L/rL + E/rE)          both satisfied

The energy estimate reuses the analytical design: compute energy from
DSP-cycles, traffic energy from the schedule-free worst case (an upper
bound, so the guarantee direction is conservative).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core.controller import Controller, LstmController
from repro.core.evaluator import AccuracyEvaluator
from repro.core.reward import AccuracyBaseline
from repro.core.search import SearchResult, TrialRecord
from repro.core.search_space import SearchSpace
from repro.fpga.energy import EnergyModel
from repro.latency.estimator import LatencyEstimator


@dataclass(frozen=True)
class EnergyAwareTrial:
    """Extra per-trial facts recorded by the energy-aware search."""

    index: int
    energy_mj: float
    energy_violated: bool
    latency_violated: bool


class EnergyAwareFnasSearch:
    """FNAS with a joint latency + energy specification."""

    def __init__(
        self,
        space: SearchSpace,
        evaluator: AccuracyEvaluator,
        latency_estimator: LatencyEstimator,
        required_latency_ms: float,
        required_energy_mj: float,
        controller: Controller | None = None,
        energy_model: EnergyModel | None = None,
        baseline_decay: float = 0.9,
    ):
        if required_latency_ms <= 0 or required_energy_mj <= 0:
            raise ValueError("latency and energy budgets must be positive")
        self.space = space
        self.evaluator = evaluator
        self.latency_estimator = latency_estimator
        self.required_latency_ms = required_latency_ms
        self.required_energy_mj = required_energy_mj
        self.controller = (
            controller if controller is not None else LstmController(space)
        )
        self.energy_model = (
            energy_model if energy_model is not None else EnergyModel()
        )
        self.baseline = AccuracyBaseline(decay=baseline_decay)

    def energy_of(self, estimate) -> float:
        """Analytical inference energy (mJ) of one latency estimate."""
        return self.energy_model.estimate(
            estimate.design, estimate.cycles).total_mj

    def run(
        self, trials: int, rng: np.random.Generator
    ) -> tuple[SearchResult, list[EnergyAwareTrial]]:
        """Run the joint-budget search; returns (ledger, energy facts)."""
        if trials <= 0:
            raise ValueError(f"trials must be positive, got {trials}")
        result = SearchResult(
            name=f"fnas-e-{self.required_latency_ms:g}ms-"
                 f"{self.required_energy_mj:g}mJ")
        energy_facts: list[EnergyAwareTrial] = []
        started = time.perf_counter()
        rl, re = self.required_latency_ms, self.required_energy_mj
        for index in range(trials):
            sample = self.controller.sample(rng)
            architecture = self.space.decode(sample.tokens)
            estimate = self.latency_estimator.estimate(architecture)
            latency = estimate.ms
            energy = self.energy_of(estimate)
            sim_seconds = self.evaluator.latency_eval_seconds()
            latency_bad = latency > rl
            energy_bad = energy > re
            if latency_bad:
                reward = (rl - latency) / rl - 1.0
                accuracy = None
                trained = False
            elif energy_bad:
                reward = (re - energy) / re - 1.0
                accuracy = None
                trained = False
            else:
                outcome = self.evaluator.evaluate(architecture)
                accuracy = outcome.accuracy
                sim_seconds += outcome.train_seconds
                reward = (accuracy - self.baseline.value
                          + 0.5 * (latency / rl + energy / re))
                self.baseline.update(accuracy)
                trained = True
            self.controller.update(sample, reward)
            result.trials.append(
                TrialRecord(
                    index=index,
                    tokens=tuple(sample.tokens),
                    architecture=architecture,
                    latency_ms=latency,
                    accuracy=accuracy,
                    reward=reward,
                    trained=trained,
                    sim_seconds=sim_seconds,
                )
            )
            energy_facts.append(
                EnergyAwareTrial(
                    index=index,
                    energy_mj=energy,
                    energy_violated=energy_bad,
                    latency_violated=latency_bad,
                )
            )
        result.wall_seconds = time.perf_counter() - started
        return result, energy_facts
