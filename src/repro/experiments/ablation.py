"""Ablation studies for the design choices called out in DESIGN.md.

Two ablations back the paper's qualitative claims:

* **Reuse alternation** (Section 3.5, Step 3): the paper observes that a
  uniform reuse strategy for all layers causes pipeline stalls.
  :func:`run_reuse_ablation` compares alternating vs uniform-OFM vs
  uniform-IFM scheduling over the Figure 8 architecture set.
* **Early pruning** (Section 3.6, Summary): FNAS's speedup comes from
  not training spec-violating children.  :func:`run_pruning_ablation`
  replays an FNAS search ledger and charges the counterfactual cost of
  training every violator, isolating how much of the saving is pruning
  (vs the surviving children simply being smaller).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.evaluator import SurrogateAccuracyEvaluator
from repro.core.search import FnasSearch, SearchResult
from repro.core.search_space import SearchSpace
from repro.configs import get_config
from repro.experiments.figure8 import figure8_architectures
from repro.experiments.reporting import format_table
from repro.experiments.runner import make_controller
from repro.fpga.device import PYNQ_Z1, FpgaDevice
from repro.fpga.platform import Platform
from repro.fpga.tiling import TilingDesigner
from repro.latency.estimator import LatencyEstimator
from repro.scheduling.fnas_sched import FnasScheduler
from repro.scheduling.simulator import PipelineSimulator
from repro.taskgraph.graph import TaskGraphGenerator


#: (label, scheduler-kwargs) grid of the reuse ablation: both runtime
#: policies crossed with the three ordering strategies.
REUSE_VARIANTS: tuple[tuple[str, dict], ...] = (
    ("alt/queue", dict()),
    ("ofm/queue", dict(uniform="ofm")),
    ("ifm/queue", dict(uniform="ifm")),
    ("alt/inorder", dict(policy="in-order")),
    ("ofm/inorder", dict(uniform="ofm", policy="in-order")),
    ("ifm/inorder", dict(uniform="ifm", policy="in-order")),
)


@dataclass(frozen=True)
class ReuseAblationPoint:
    """Makespans of every policy x strategy variant on one architecture."""

    filter_counts: tuple[int, ...]
    cycles: dict[str, int]

    def stall_free_equivalent(self, label: str) -> bool:
        """Whether ``label`` matches the best observed makespan."""
        return self.cycles[label] == min(self.cycles.values())


@dataclass
class ReuseAblationResult:
    """All architectures of the reuse-strategy ablation.

    The claim under test (paper Section 3.5 Step 3): under strict
    in-order execution, a *uniform* reuse strategy stalls the pipeline
    while alternation avoids it.  A second observation this grid makes
    visible: the ready-to-run queue (P3) independently removes those
    stalls, so with the queue enabled the strategies converge.
    """

    points: list[ReuseAblationPoint]

    def win_or_tie_rate(self, winner: str, loser: str) -> float:
        """Fraction of architectures where ``winner`` <= ``loser``."""
        wins = sum(
            1 for p in self.points if p.cycles[winner] <= p.cycles[loser]
        )
        return wins / len(self.points)

    def mean_ratio(self, numerator: str, denominator: str) -> float:
        """Mean makespan ratio between two variants."""
        import numpy as _np

        return float(_np.mean([
            p.cycles[numerator] / p.cycles[denominator] for p in self.points
        ]))

    def format(self) -> str:
        """Render the full grid."""
        labels = [label for label, _ in REUSE_VARIANTS]
        headers = ["Filters"] + labels
        rows = [
            ["-".join(map(str, p.filter_counts))]
            + [str(p.cycles[label]) for label in labels]
            for p in self.points
        ]
        return format_table(headers, rows)


def run_reuse_ablation(
    device: FpgaDevice = PYNQ_Z1,
) -> ReuseAblationResult:
    """Compare reuse strategies x stall policies over the Figure 8 set."""
    platform = Platform.single(device)
    designer = TilingDesigner()
    generator = TaskGraphGenerator()
    simulator = PipelineSimulator()
    points = []
    for arch in figure8_architectures():
        design = designer.design(arch, platform)
        graph = generator.generate(design)
        cycles = {
            label: simulator.run(
                FnasScheduler(**kwargs).schedule(graph)).makespan
            for label, kwargs in REUSE_VARIANTS
        }
        points.append(
            ReuseAblationPoint(
                filter_counts=arch.filter_counts,
                cycles=cycles,
            )
        )
    return ReuseAblationResult(points=points)


@dataclass
class PruningAblationResult:
    """Actual vs counterfactual (no-pruning) search cost."""

    search: SearchResult
    actual_seconds: float
    no_pruning_seconds: float

    @property
    def pruning_speedup(self) -> float:
        """How much early pruning alone buys."""
        return self.no_pruning_seconds / self.actual_seconds

    def format(self) -> str:
        """One-line summary."""
        return (
            f"trained {self.search.trained_count}/"
            f"{len(self.search.trials)} children; "
            f"with pruning {self.actual_seconds:.0f}s, "
            f"without {self.no_pruning_seconds:.0f}s "
            f"({self.pruning_speedup:.2f}x from pruning alone)"
        )


def run_pruning_ablation(
    dataset: str = "mnist",
    required_latency_ms: float = 2.0,
    trials: int | None = None,
    seed: int = 0,
    device: FpgaDevice = PYNQ_Z1,
    batch_size: int = 1,
) -> PruningAblationResult:
    """Measure the early-pruning saving on one FNAS search.

    Runs FNAS normally, then charges the counterfactual ledger where
    every pruned child is trained anyway (same architectures, same
    order), so the difference is exactly the pruning saving.
    """
    config = get_config(dataset)
    space = SearchSpace.from_config(config)
    evaluator = SurrogateAccuracyEvaluator(space, config=config, seed=seed)
    estimator = LatencyEstimator(Platform.single(device))
    search = FnasSearch(
        space, evaluator, estimator, required_latency_ms,
        controller=make_controller(space, seed),
    ).run(trials if trials is not None else config.trials,
          np.random.default_rng(seed), batch_size=batch_size)
    actual = search.simulated_seconds
    counterfactual = actual
    for trial in search.trials:
        if trial.pruned:
            counterfactual += evaluator.evaluate(
                trial.architecture).train_seconds
    return PruningAblationResult(
        search=search,
        actual_seconds=actual,
        no_pruning_seconds=counterfactual,
    )
