"""Plain-text table formatting for experiment reports."""

from __future__ import annotations


def format_table(headers: list[str], rows: list[list[str]]) -> str:
    """Render an aligned monospace table.

    All cells are strings; callers format numbers themselves so each
    experiment controls its own precision.
    """
    if any(len(row) != len(headers) for row in rows):
        raise ValueError("every row must have one cell per header")
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(cells: list[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))
    lines = [fmt(headers), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)


def improvement(baseline: float, value: float) -> float:
    """``baseline / value`` -- the paper's "Imp." columns (x factors)."""
    if value <= 0:
        raise ValueError(f"value must be positive, got {value}")
    return baseline / value


def format_minutes(seconds: float) -> str:
    """``4473s -> '74m33s'`` (the paper's Elapsed column format)."""
    if seconds < 0:
        raise ValueError(f"seconds must be >= 0, got {seconds}")
    minutes = int(seconds // 60)
    rem = int(round(seconds - minutes * 60))
    if rem == 60:
        minutes, rem = minutes + 1, 0
    return f"{minutes}m{rem:02d}s"
