"""Experiment runners: one per table/figure of the paper's evaluation."""

from repro.experiments.configs import (
    CIFAR_CONFIG,
    CONFIGS,
    IMAGENET_CONFIG,
    MNIST_CONFIG,
    ExperimentConfig,
    TimingSpecs,
    get_config,
)
from repro.experiments.ablation import (
    PruningAblationResult,
    ReuseAblationResult,
    run_pruning_ablation,
    run_reuse_ablation,
)
from repro.experiments.figure6 import Figure6Bar, Figure6Result, run_figure6
from repro.experiments.figure7 import Figure7Point, Figure7Result, run_figure7
from repro.experiments.figure8 import (
    Figure8Point,
    Figure8Result,
    figure8_architectures,
    run_figure8,
)
from repro.experiments.pareto import (
    ParetoFront,
    ParetoPoint,
    compute_pareto_front,
)
from repro.experiments.reporting import format_minutes, format_table, improvement
from repro.experiments.runner import PairedSearchOutcome, run_paired_search
from repro.experiments.table1 import Table1Result, Table1Row, run_table1

__all__ = [
    "PruningAblationResult",
    "ReuseAblationResult",
    "run_pruning_ablation",
    "run_reuse_ablation",
    "ParetoFront",
    "ParetoPoint",
    "compute_pareto_front",
    "CIFAR_CONFIG",
    "CONFIGS",
    "IMAGENET_CONFIG",
    "MNIST_CONFIG",
    "ExperimentConfig",
    "TimingSpecs",
    "get_config",
    "Figure6Bar",
    "Figure6Result",
    "run_figure6",
    "Figure7Point",
    "Figure7Result",
    "run_figure7",
    "Figure8Point",
    "Figure8Result",
    "figure8_architectures",
    "run_figure8",
    "format_minutes",
    "format_table",
    "improvement",
    "PairedSearchOutcome",
    "run_paired_search",
    "Table1Result",
    "Table1Row",
    "run_table1",
]
