"""Figure 9 (extension): conv-type Pareto fronts across memory hierarchies.

The paper's model is compute-only: a layer costs what its MACs cost.
The memory-hierarchy extension (:mod:`repro.fpga.dram`) prices the
load / compute / write phases separately, and that changes *which
architectures win*: a depthwise-separable layer does ~K^2x less compute
per byte moved than its standard twin, so it is the first casualty when
effective DRAM bandwidth drops.

This experiment makes that visible.  It computes the accuracy-latency
Pareto frontier of the MobileNet-class space twice per device -- once
restricted to separable layers, once to standard layers -- on a
bandwidth-rich and a bandwidth-starved variant of the same fabric
(identical DSPs, BRAM and clock; only the DRAM interface differs).  On
the wide-DDR part the separable frontier reaches low latencies the
standard family cannot touch; on the narrow-DDR part the separable
advantage collapses, because its layers sit on the load phase.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any

from repro.core.evaluator import AccuracyEvaluator, SurrogateAccuracyEvaluator
from repro.core.search_space import SearchSpace
from repro.experiments.configs import MOBILENET_CONFIG
from repro.experiments.pareto import ParetoFront, compute_pareto_front
from repro.experiments.reporting import format_table
from repro.fpga.device import FpgaDevice, get_device
from repro.fpga.platform import Platform
from repro.plans import RunPlan, ScenarioPlan, SearchPlan

#: The two conv-type families compared, one frontier each per device.
FAMILIES = ("separable", "standard")

#: Bandwidth-rich vs bandwidth-starved variants of the same fabric.
FIGURE9_DEVICES = ("xc7z020-ddr-wide", "xc7z020-ddr-narrow")

#: Architectures sampled per frontier when the plan sets no trial count.
FIGURE9_SAMPLES = 256


def figure9_plan(
    samples: int | None = None,
    seed: int = 0,
    devices: tuple[str, ...] = FIGURE9_DEVICES,
    execution: Any = None,
) -> RunPlan:
    """The declarative plan behind ``repro figure9``.

    ``samples`` rides in the search plan's ``trials`` slot: it bounds
    how many architectures each frontier samples from the (too large
    to enumerate) MobileNet space.
    """
    plan_kwargs = {} if execution is None else {"execution": execution}
    return RunPlan(
        workload="figure9",
        search=SearchPlan(seed=seed, trials=samples),
        scenario=ScenarioPlan(
            datasets=("mobilenet",),
            devices=tuple(devices),
        ),
        **plan_kwargs,
    )


@dataclass(frozen=True)
class Figure9Curve:
    """One frontier: a conv-type family on one device."""

    device: str
    family: str
    front: ParetoFront

    @property
    def min_latency_ms(self) -> float:
        """Latency of the frontier's fastest architecture."""
        return self.front.points[0].latency_ms

    @property
    def best_accuracy(self) -> float:
        """Accuracy of the frontier's most accurate architecture."""
        return self.front.points[-1].accuracy


@dataclass
class Figure9Result:
    """All four frontiers plus the derived bandwidth-sensitivity view."""

    curves: list[Figure9Curve]
    devices: tuple[str, ...]

    def curve(self, device: str, family: str) -> Figure9Curve:
        """The frontier of ``family`` on ``device``."""
        for c in self.curves:
            if c.device == device and c.family == family:
                return c
        raise KeyError(f"no frontier for {family!r} on {device!r}")

    def slowdown(self, family: str) -> float:
        """How much the starved device slows ``family``'s fastest point.

        ``min_latency(starved) / min_latency(rich)`` for the family's
        frontier; needs exactly two devices (rich first, as in
        :data:`FIGURE9_DEVICES`).  Depthwise-heavy families show the
        larger slowdown -- they have the least compute per byte to hide
        the memory phases behind.
        """
        if len(self.devices) != 2:
            raise ValueError(
                f"slowdown needs exactly 2 devices, have {self.devices}"
            )
        rich, starved = self.devices
        return (self.curve(starved, family).min_latency_ms
                / self.curve(rich, family).min_latency_ms)

    def format(self) -> str:
        """Render the per-curve summary plus the slowdown panel."""
        headers = ["Device", "Family", "Sampled", "Frontier",
                   "MinLat(ms)", "BestAcc", "Acc@MinLat"]
        rows = []
        for c in self.curves:
            rows.append([
                c.device,
                c.family,
                str(c.front.evaluated_count),
                str(len(c.front.points)),
                f"{c.min_latency_ms:.3f}",
                f"{100 * c.best_accuracy:.2f}%",
                f"{100 * c.front.points[0].accuracy:.2f}%",
            ])
        text = format_table(headers, rows)
        if len(self.devices) == 2:
            lines = [text, "", "slowdown (starved / rich, fastest point):"]
            for family in FAMILIES:
                lines.append(f"  {family:10s} {self.slowdown(family):.2f}x")
            text = "\n".join(lines)
        return text


def _family_space(family: str) -> SearchSpace:
    """The MobileNet-class space restricted to one conv-type family."""
    config = dataclasses.replace(MOBILENET_CONFIG, conv_types=(family,))
    return SearchSpace.from_config(config)


def run_figure9_plan(
    plan: RunPlan,
    evaluator: AccuracyEvaluator | None = None,
    devices: tuple[FpgaDevice, ...] | None = None,
    emit=None,
    should_stop=None,
) -> Figure9Result:
    """Regenerate Figure 9 from its declarative plan.

    One :func:`~repro.experiments.pareto.compute_pareto_front` call per
    (device, family) pair, all from the same sample budget and seed.
    Each family gets its own surrogate landscape (the spaces differ),
    but within a family the same architectures are scored on both
    devices, so latency shifts -- not sampling noise -- move the
    frontiers apart.
    """
    if devices is None:
        names = plan.scenario.devices or FIGURE9_DEVICES
        devices = tuple(get_device(name) for name in names)
    samples = plan.search.trials or FIGURE9_SAMPLES
    seed = plan.search.seed
    curves: list[Figure9Curve] = []
    for family in FAMILIES:
        space = _family_space(family)
        family_eval = evaluator
        if family_eval is None:
            family_eval = SurrogateAccuracyEvaluator(space, seed=seed)
        for device in devices:
            if should_stop is not None and should_stop():
                from repro.core.search import SearchCancelled

                raise SearchCancelled(0)
            front = compute_pareto_front(
                space,
                Platform.single(device),
                evaluator=family_eval,
                samples=samples,
                seed=seed,
            )
            if emit is not None:
                emit("pareto", device.name,
                     f"{family}: {len(front.points)} frontier point(s) "
                     f"from {front.evaluated_count} sampled")
            curves.append(
                Figure9Curve(device=device.name, family=family, front=front)
            )
    return Figure9Result(curves=curves, devices=tuple(d.name for d in devices))


def run_figure9(
    samples: int | None = None,
    seed: int = 0,
    devices: tuple[FpgaDevice, ...] | None = None,
) -> Figure9Result:
    """Legacy kwarg entry point over the plan API."""
    live = (tuple(get_device(name) for name in FIGURE9_DEVICES)
            if devices is None else tuple(devices))
    plan = figure9_plan(samples=samples, seed=seed, devices=FIGURE9_DEVICES)
    return run_figure9_plan(plan, devices=live)
