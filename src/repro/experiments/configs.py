"""Table 2 configs -- re-exported from :mod:`repro.configs`.

The canonical definitions live in ``repro.configs`` (a leaf module) so
that core modules can import them without pulling in the experiment
runners; this shim keeps the natural ``repro.experiments.configs`` path
working.
"""

from repro.configs import (
    CIFAR_CONFIG,
    CONFIGS,
    IMAGENET_CONFIG,
    MNIST_CONFIG,
    MOBILENET_CONFIG,
    ExperimentConfig,
    TimingSpecs,
    get_config,
)

__all__ = [
    "CIFAR_CONFIG",
    "CONFIGS",
    "IMAGENET_CONFIG",
    "MNIST_CONFIG",
    "MOBILENET_CONFIG",
    "ExperimentConfig",
    "TimingSpecs",
    "get_config",
]
