"""Figure 8: FNAS-Sched vs fixed scheduling over 16 architectures.

The paper's scheduler study: 4-convolution-layer networks with 3x3
filters and 64 or 128 filters per layer (2^4 = 16 architectures) on the
PYNQ board with four accelerators (one PE per layer).  For each
architecture, both schedulers run through the cycle-accurate simulator;
the figure reports clock cycles and the percentage improvement of
FNAS-Sched, which the paper shows winning on all 16.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.core.architecture import Architecture
from repro.experiments.reporting import format_table
from repro.fpga.device import PYNQ_Z1, FpgaDevice
from repro.fpga.platform import Platform
from repro.fpga.tiling import TilingDesigner
from repro.scheduling.fixed_sched import FixedScheduler
from repro.scheduling.fnas_sched import FnasScheduler
from repro.scheduling.simulator import PipelineSimulator
from repro.taskgraph.graph import TaskGraphGenerator

#: Paper setup: 4 layers, 3x3 filters, 64 or 128 filters each.
FIGURE8_LAYERS = 4
FIGURE8_KERNEL = 3
FIGURE8_FILTER_CHOICES = (64, 128)
FIGURE8_INPUT_SIZE = 28  # MNIST-sized feature maps on the PYNQ board


@dataclass(frozen=True)
class Figure8Point:
    """One architecture's scheduler comparison."""

    index: int
    filter_counts: tuple[int, ...]
    fnas_cycles: int
    fixed_cycles: int

    @property
    def improvement_percent(self) -> float:
        """Cycle reduction of FNAS-Sched relative to fixed scheduling."""
        return 100.0 * (self.fixed_cycles - self.fnas_cycles) / self.fixed_cycles


@dataclass
class Figure8Result:
    """All 16 points."""

    points: list[Figure8Point]

    @property
    def mean_improvement_percent(self) -> float:
        """Average cycle reduction across the architectures."""
        return sum(p.improvement_percent for p in self.points) / len(self.points)

    @property
    def all_improved(self) -> bool:
        """Whether FNAS-Sched won on every architecture (paper: yes)."""
        return all(p.fnas_cycles < p.fixed_cycles for p in self.points)

    def format(self) -> str:
        """Render as the figure's bar data."""
        headers = ["#", "Filters", "FNAS-Sched", "Fixed", "Imp."]
        rows = []
        for p in self.points:
            rows.append([
                str(p.index + 1),
                "-".join(str(f) for f in p.filter_counts),
                str(p.fnas_cycles),
                str(p.fixed_cycles),
                f"{p.improvement_percent:.2f}%",
            ])
        return format_table(headers, rows)


def figure8_architectures(
    input_size: int = FIGURE8_INPUT_SIZE,
    input_channels: int = 1,
) -> list[Architecture]:
    """The 16 architectures of the study, in lexicographic filter order."""
    archs = []
    for counts in itertools.product(
        FIGURE8_FILTER_CHOICES, repeat=FIGURE8_LAYERS
    ):
        archs.append(
            Architecture.from_choices(
                filter_sizes=[FIGURE8_KERNEL] * FIGURE8_LAYERS,
                filter_counts=list(counts),
                input_size=input_size,
                input_channels=input_channels,
            )
        )
    return archs


def run_figure8(
    device: FpgaDevice = PYNQ_Z1,
    input_size: int = FIGURE8_INPUT_SIZE,
) -> Figure8Result:
    """Regenerate Figure 8: simulate both schedulers on all 16 networks."""
    platform = Platform.single(device)
    designer = TilingDesigner()
    generator = TaskGraphGenerator()
    simulator = PipelineSimulator()
    fnas_sched = FnasScheduler()
    fixed_sched = FixedScheduler()
    points: list[Figure8Point] = []
    for index, arch in enumerate(figure8_architectures(input_size)):
        design = designer.design(arch, platform)
        graph = generator.generate(design)
        fnas_cycles = simulator.run(fnas_sched.schedule(graph)).makespan
        fixed_cycles = simulator.run(fixed_sched.schedule(graph)).makespan
        points.append(
            Figure8Point(
                index=index,
                filter_counts=arch.filter_counts,
                fnas_cycles=fnas_cycles,
                fixed_cycles=fixed_cycles,
            )
        )
    return Figure8Result(points=points)
