"""Figure 6: search time / latency / accuracy on two FPGAs (MNIST).

The paper compares NAS against FNAS-loose (TS2), FNAS-med (TS3) and
FNAS-tight (TS4) on a high-end FPGA (XC7Z020) and a low-end one
(XC7A50T).  The TS values differ per device class (Table 2's TS-High
vs TS-Low rows) because the low-end part is slower.

Expected shape: FNAS search time shrinks as the spec tightens; FNAS
latency always meets the spec while NAS's single architecture exceeds
the tight specs by several x; FNAS accuracy trails NAS by under a
point, more so for tighter specs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.api import resolve_execution
from repro.core.evaluator import AccuracyEvaluator
from repro.experiments.configs import MNIST_CONFIG
from repro.experiments.reporting import format_minutes, format_table
from repro.experiments.runner import (
    EmitFn,
    PairedSearchOutcome,
    run_paired_plan,
)
from repro.fpga.device import XC7A50T, XC7Z020, FpgaDevice, get_device
from repro.fpga.platform import Platform
from repro.plans import RunPlan, ScenarioPlan, SearchPlan

#: Figure 6 bar labels, loosest to tightest.
VARIANTS = ("FNAS-loose", "FNAS-med", "FNAS-tight")

#: The two device classes the paper compares (high-end, low-end).
FIGURE6_DEVICES = (XC7Z020.name, XC7A50T.name)


def figure6_plan(
    trials: int | None = None,
    seed: int = 0,
    devices: tuple[str, ...] = FIGURE6_DEVICES,
    execution: Any = None,
) -> RunPlan:
    """The declarative plan behind ``repro figure6``.

    MNIST on both device classes; the per-device TS2..TS4 specs come
    from Table 2 at run time, so the scenario leaves ``specs_ms``
    empty.
    """
    plan_kwargs = {} if execution is None else {"execution": execution}
    return RunPlan(
        workload="figure6",
        search=SearchPlan(seed=seed, trials=trials),
        scenario=ScenarioPlan(
            datasets=("mnist",),
            devices=tuple(devices),
            include_nas=True,
        ),
        **plan_kwargs,
    )


@dataclass(frozen=True)
class Figure6Bar:
    """One bar of the three grouped charts."""

    device: str
    method: str
    spec_ms: float | None
    search_seconds: float
    latency_ms: float
    accuracy: float
    meets_spec: bool | None


@dataclass
class Figure6Result:
    """All bars plus raw outcomes per device."""

    bars: list[Figure6Bar]
    outcomes: dict[str, PairedSearchOutcome]

    def bars_for(self, device: str) -> list[Figure6Bar]:
        """The four bars of one device's chart group."""
        return [b for b in self.bars if b.device == device]

    def format(self) -> str:
        """Render all three panels as one table."""
        headers = ["Device", "Method", "TS(ms)", "SearchTime", "Lat(ms)",
                   "Acc.", "MeetsSpec"]
        rows = []
        for bar in self.bars:
            rows.append([
                bar.device,
                bar.method,
                "-" if bar.spec_ms is None else f"{bar.spec_ms:g}",
                format_minutes(bar.search_seconds),
                f"{bar.latency_ms:.2f}",
                f"{100 * bar.accuracy:.2f}%",
                "-" if bar.meets_spec is None else str(bar.meets_spec),
            ])
        return format_table(headers, rows)


def _device_specs(device: FpgaDevice) -> list[tuple[str, float]]:
    """(variant name, TS ms) for one device class: TS2/TS3/TS4."""
    if device.name == XC7A50T.name:
        specs = MNIST_CONFIG.timing_specs_low
    else:
        specs = MNIST_CONFIG.timing_specs
    assert specs is not None
    return [
        ("FNAS-loose", specs.ts2),
        ("FNAS-med", specs.ts3),
        ("FNAS-tight", specs.ts4),
    ]


def run_figure6_plan(
    plan: RunPlan,
    evaluator: AccuracyEvaluator | None = None,
    devices: tuple[FpgaDevice, ...] | None = None,
    emit: EmitFn | None = None,
    should_stop=None,
) -> Figure6Result:
    """Regenerate Figure 6 from its declarative plan.

    The plan-native core: :class:`repro.api.Session` dispatches
    ``workload="figure6"`` here.  Devices come from the plan's
    scenario (default: both paper device classes) unless live
    :class:`~repro.fpga.device.FpgaDevice` objects override them --
    the escape hatch for non-catalog devices, which plan data cannot
    name.  In campaign mode shard ids embed the device name, so one
    checkpoint directory serves both devices.
    """
    if devices is None:
        names = plan.scenario.devices or FIGURE6_DEVICES
        devices = tuple(get_device(name) for name in names)
    dataset = (plan.scenario.datasets[0] if plan.scenario.datasets
               else "mnist")
    bars: list[Figure6Bar] = []
    outcomes: dict[str, PairedSearchOutcome] = {}
    for device in devices:
        named_specs = _device_specs(device)
        outcome = run_paired_plan(
            plan,
            dataset=dataset,
            platform=Platform.single(device),
            specs_ms=[ms for _, ms in named_specs],
            evaluator=evaluator,
            emit=emit,
            should_stop=should_stop,
        )
        outcomes[device.name] = outcome
        nas_best = outcome.nas.best()
        bars.append(
            Figure6Bar(
                device=device.name,
                method="NAS",
                spec_ms=None,
                search_seconds=outcome.nas.simulated_seconds,
                latency_ms=outcome.nas_best_latency_ms,
                accuracy=nas_best.accuracy,
                meets_spec=None,
            )
        )
        for name, spec in named_specs:
            result = outcome.fnas_for(spec)
            best = result.best_valid(spec)
            assert best.latency_ms is not None
            bars.append(
                Figure6Bar(
                    device=device.name,
                    method=name,
                    spec_ms=spec,
                    search_seconds=result.simulated_seconds,
                    latency_ms=best.latency_ms,
                    accuracy=best.accuracy,
                    meets_spec=best.latency_ms <= spec,
                )
            )
    return Figure6Result(bars=bars, outcomes=outcomes)


def run_figure6(
    trials: int | None = None,
    seed: int = 0,
    devices: tuple[FpgaDevice, ...] = (XC7Z020, XC7A50T),
    evaluator: AccuracyEvaluator | None = None,
    batch_size: int = 1,
    parallel_workers: int = 1,  # deprecated alias: eval_workers
    campaign_dir: str | None = None,  # deprecated alias: checkpoint_dir
    shard_workers: int = 1,
    *,
    eval_workers: int | None = None,
    checkpoint_dir: str | None = None,
    checkpoint_every: int | None = None,
) -> Figure6Result:
    """Legacy kwarg entry point -- a deprecation shim over the plan API.

    Lowers the arguments onto :func:`figure6_plan` and runs the
    plan-native core, forwarding the live device objects so
    non-catalog devices keep working.
    """
    from repro.registry import DEVICES

    catalog = tuple(d.name for d in devices if d.name in DEVICES)
    plan = figure6_plan(
        trials=trials,
        seed=seed,
        devices=catalog if len(catalog) == len(devices) else FIGURE6_DEVICES,
        execution=resolve_execution(
            batch_size=batch_size,
            eval_workers=eval_workers,
            shard_workers=shard_workers,
            checkpoint_dir=checkpoint_dir,
            checkpoint_every=checkpoint_every,
            parallel_workers=parallel_workers,  # deprecated passthrough
            campaign_dir=campaign_dir,  # deprecated passthrough
        ),
    )
    return run_figure6_plan(plan, evaluator=evaluator, devices=tuple(devices))
