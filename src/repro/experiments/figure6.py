"""Figure 6: search time / latency / accuracy on two FPGAs (MNIST).

The paper compares NAS against FNAS-loose (TS2), FNAS-med (TS3) and
FNAS-tight (TS4) on a high-end FPGA (XC7Z020) and a low-end one
(XC7A50T).  The TS values differ per device class (Table 2's TS-High
vs TS-Low rows) because the low-end part is slower.

Expected shape: FNAS search time shrinks as the spec tightens; FNAS
latency always meets the spec while NAS's single architecture exceeds
the tight specs by several x; FNAS accuracy trails NAS by under a
point, more so for tighter specs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.evaluator import AccuracyEvaluator
from repro.experiments.configs import MNIST_CONFIG
from repro.experiments.reporting import format_minutes, format_table
from repro.experiments.runner import PairedSearchOutcome, run_paired_search
from repro.fpga.device import XC7A50T, XC7Z020, FpgaDevice
from repro.fpga.platform import Platform

#: Figure 6 bar labels, loosest to tightest.
VARIANTS = ("FNAS-loose", "FNAS-med", "FNAS-tight")


@dataclass(frozen=True)
class Figure6Bar:
    """One bar of the three grouped charts."""

    device: str
    method: str
    spec_ms: float | None
    search_seconds: float
    latency_ms: float
    accuracy: float
    meets_spec: bool | None


@dataclass
class Figure6Result:
    """All bars plus raw outcomes per device."""

    bars: list[Figure6Bar]
    outcomes: dict[str, PairedSearchOutcome]

    def bars_for(self, device: str) -> list[Figure6Bar]:
        """The four bars of one device's chart group."""
        return [b for b in self.bars if b.device == device]

    def format(self) -> str:
        """Render all three panels as one table."""
        headers = ["Device", "Method", "TS(ms)", "SearchTime", "Lat(ms)",
                   "Acc.", "MeetsSpec"]
        rows = []
        for bar in self.bars:
            rows.append([
                bar.device,
                bar.method,
                "-" if bar.spec_ms is None else f"{bar.spec_ms:g}",
                format_minutes(bar.search_seconds),
                f"{bar.latency_ms:.2f}",
                f"{100 * bar.accuracy:.2f}%",
                "-" if bar.meets_spec is None else str(bar.meets_spec),
            ])
        return format_table(headers, rows)


def _device_specs(device: FpgaDevice) -> list[tuple[str, float]]:
    """(variant name, TS ms) for one device class: TS2/TS3/TS4."""
    if device.name == XC7A50T.name:
        specs = MNIST_CONFIG.timing_specs_low
    else:
        specs = MNIST_CONFIG.timing_specs
    assert specs is not None
    return [
        ("FNAS-loose", specs.ts2),
        ("FNAS-med", specs.ts3),
        ("FNAS-tight", specs.ts4),
    ]


def run_figure6(
    trials: int | None = None,
    seed: int = 0,
    devices: tuple[FpgaDevice, ...] = (XC7Z020, XC7A50T),
    evaluator: AccuracyEvaluator | None = None,
    batch_size: int = 1,
    parallel_workers: int = 1,
    campaign_dir: str | None = None,
    shard_workers: int = 1,
) -> Figure6Result:
    """Regenerate Figure 6 (both FPGAs, four bars each).

    ``campaign_dir`` / ``shard_workers`` run each device's searches as
    a resumable campaign (see :func:`run_paired_search`); shard ids
    embed the device name, so one directory serves both devices.
    """
    bars: list[Figure6Bar] = []
    outcomes: dict[str, PairedSearchOutcome] = {}
    for device in devices:
        named_specs = _device_specs(device)
        outcome = run_paired_search(
            dataset="mnist",
            platform=Platform.single(device),
            specs_ms=[ms for _, ms in named_specs],
            trials=trials,
            seed=seed,
            evaluator=evaluator,
            batch_size=batch_size,
            parallel_workers=parallel_workers,
            campaign_dir=campaign_dir,
            shard_workers=shard_workers,
        )
        outcomes[device.name] = outcome
        nas_best = outcome.nas.best()
        bars.append(
            Figure6Bar(
                device=device.name,
                method="NAS",
                spec_ms=None,
                search_seconds=outcome.nas.simulated_seconds,
                latency_ms=outcome.nas_best_latency_ms,
                accuracy=nas_best.accuracy,
                meets_spec=None,
            )
        )
        for name, spec in named_specs:
            result = outcome.fnas[spec]
            best = result.best_valid(spec)
            assert best.latency_ms is not None
            bars.append(
                Figure6Bar(
                    device=device.name,
                    method=name,
                    spec_ms=spec,
                    search_seconds=result.simulated_seconds,
                    latency_ms=best.latency_ms,
                    accuracy=best.accuracy,
                    meets_spec=best.latency_ms <= spec,
                )
            )
    return Figure6Result(bars=bars, outcomes=outcomes)
