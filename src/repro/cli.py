"""Command-line interface: regenerate any table/figure from the shell.

::

    python -m repro table1                 # Table 1 (MNIST on PYNQ)
    python -m repro figure6               # Figure 6 (two FPGAs)
    python -m repro figure7               # Figure 7 (three datasets)
    python -m repro figure8               # Figure 8 (scheduler study)
    python -m repro ablations             # reuse + pruning ablations
    python -m repro estimate 5,7,5,7 9,18,18,36 --device pynq-z1
    python -m repro sweep --seeds 0,1,2 --specs 5,2 --shard-workers 4
    python -m repro table1 --dump-plan plan.json   # ...and run it again:
    python -m repro run plan.json
    python -m repro serve --port 8765             # search-as-a-service...
    python -m repro submit plan.json              # ...and a client for it

Every search command lowers its flags onto one declarative
:class:`~repro.plans.RunPlan` executed through
:class:`repro.api.Session` -- ``--dump-plan PATH`` writes that plan as
JSON (the run still happens), and ``repro run PATH`` replays a dumped
plan, reproducing the original run's trial ledgers byte for byte.

Flags are named after :class:`~repro.plans.ExecutionPolicy` fields:
``--batch-size``, ``--eval-workers``, ``--shard-workers``,
``--checkpoint-dir``, ``--checkpoint-every``.  The pre-plan spellings
``--workers`` and ``--campaign-dir`` remain as hidden deprecated
aliases.
"""

from __future__ import annotations

import argparse
import dataclasses
import sys

from repro.core.architecture import Architecture
from repro.fpga.device import get_device
from repro.fpga.platform import Platform
from repro.latency.estimator import LatencyEstimator
from repro.plans import (
    ExecutionPolicy,
    RunPlan,
    ScenarioPlan,
    SearchPlan,
    load_plan,
    save_plan,
)

#: Commands that lower to a RunPlan (everything but ``estimate``/``run``).
PLAN_COMMANDS = ("table1", "figure6", "figure7", "figure8", "figure9",
                 "ablations", "report", "sweep")


def _add_execution_flags(parser: argparse.ArgumentParser) -> None:
    """The canonical ExecutionPolicy-derived flag set."""
    parser.add_argument("--batch-size", type=int, default=1,
                        help="candidates per controller step; 1 (default) "
                             "reproduces the sequential published "
                             "trajectories, >1 drives the vectorized "
                             "batched runtime")
    parser.add_argument("--eval-workers", type=int, default=None,
                        help="process-pool workers for child evaluation "
                             "(default 1 = in-process; useful with real "
                             "training evaluators)")
    parser.add_argument("--workers",  # deprecated: --eval-workers
                        dest="workers_alias", type=int,
                        default=None,
                        help=argparse.SUPPRESS)  # deprecated: --eval-workers
    parser.add_argument("--shard-workers", type=int, default=1,
                        help="worker-pool processes for whole search shards "
                             "in campaign mode (default 1 = serial)")
    parser.add_argument("--shard-batch-trials", type=int, default=None,
                        help="batch shards smaller than this many trials "
                             "together per worker dispatch (default: no "
                             "batching); execution-only, never changes "
                             "results")
    parser.add_argument("--checkpoint-dir", default=None,
                        help="snapshot searches under this directory; "
                             "re-running with the same directory resumes "
                             "interrupted searches")
    parser.add_argument("--campaign-dir",  # deprecated: --checkpoint-dir
                        dest="campaign_dir_alias",  # deprecated alias
                        default=None,
                        help=argparse.SUPPRESS)  # deprecated: --checkpoint-dir
    parser.add_argument("--checkpoint-every", type=int, default=None,
                        help="trials between snapshots (default: ~10 per "
                             "search)")


def _add_search_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--seed", type=int, default=0,
                        help="RNG seed for the searches (default 0)")
    parser.add_argument("--trials", type=int, default=None,
                        help="children per search (default: Table 2's 60)")
    _add_execution_flags(parser)
    _add_dump_plan_flag(parser)


def _add_dump_plan_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--dump-plan", default=None, metavar="PATH",
                        help="also write this invocation's RunPlan as JSON "
                             "to PATH; `repro run PATH` replays it")


def _int_list(text: str) -> list[int]:
    return [int(x) for x in text.split(",") if x]


def _float_list(text: str) -> list[float]:
    return [float(x) for x in text.split(",") if x]


def _str_list(text: str) -> list[str]:
    return [x for x in text.split(",") if x]


def build_parser() -> argparse.ArgumentParser:
    """The ``python -m repro`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="FNAS (DAC 2019) reproduction experiments",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    for name, help_text in (
        ("table1", "Table 1: NAS vs FNAS on MNIST targeting PYNQ"),
        ("figure6", "Figure 6: search time/latency/accuracy on two FPGAs"),
        ("figure7", "Figure 7: accuracy loss & speedup vs TS, 3 datasets"),
    ):
        p = sub.add_parser(name, help=help_text)
        _add_search_flags(p)

    p = sub.add_parser("figure8", help="Figure 8: FNAS-Sched vs fixed "
                                       "scheduling over 16 architectures")
    _add_dump_plan_flag(p)

    p = sub.add_parser(
        "figure9",
        help="Figure 9 (extension): separable vs standard Pareto fronts "
             "on bandwidth-rich vs bandwidth-starved DDR devices",
    )
    p.add_argument("--seed", type=int, default=0,
                   help="RNG seed for sampling and surrogates (default 0)")
    p.add_argument("--samples", type=int, default=None,
                   help="architectures sampled per frontier (default 256)")
    p.add_argument("--devices", type=_str_list, default=None,
                   help="comma-separated catalog devices (default "
                        "xc7z020-ddr-wide,xc7z020-ddr-narrow)")
    _add_dump_plan_flag(p)

    p = sub.add_parser("ablations", help="reuse-strategy and early-pruning "
                                         "ablations")
    _add_search_flags(p)

    p = sub.add_parser("report", help="run every experiment and write a "
                                      "markdown reproduction report")
    _add_search_flags(p)
    p.add_argument("--output", default="reproduction_report.md",
                   help="output path (default reproduction_report.md)")

    p = sub.add_parser(
        "sweep",
        help="run a sharded, checkpointed search campaign over a "
             "(dataset x device x seed x spec) grid",
    )
    p.add_argument("--datasets", type=_str_list, default=["mnist"],
                   help="comma-separated Table 2 datasets (default mnist)")
    p.add_argument("--devices", type=_str_list, default=["pynq-z1"],
                   help="comma-separated catalog devices (default pynq-z1)")
    p.add_argument("--seeds", type=_int_list, default=[0],
                   help="comma-separated seeds, one shard set per seed "
                        "(default 0)")
    p.add_argument("--specs", type=_float_list, default=[],
                   help="comma-separated FNAS timing specs in ms; one "
                        "FNAS shard per spec")
    p.add_argument("--include-nas", action="store_true",
                   help="also run the accuracy-only NAS baseline per "
                        "(dataset, device, seed)")
    p.add_argument("--boards", type=int, default=1,
                   help="replicate each device this many times per "
                        "platform (default 1)")
    p.add_argument("--trials", type=int, default=None,
                   help="children per shard (default: Table 2's 60)")
    _add_execution_flags(p)
    _add_dump_plan_flag(p)
    p.add_argument("--output", default=None,
                   help="also write the merged campaign artifact (JSON, "
                        "per-shard ledgers + Pareto frontier) here")
    p.add_argument("--quiet", action="store_true",
                   help="suppress per-shard progress lines")

    p = sub.add_parser(
        "run",
        help="execute a RunPlan JSON file written by --dump-plan",
    )
    p.add_argument("plan", help="path to the plan JSON")
    p.add_argument("--output", default=None,
                   help="override the plan's artifact output path")
    p.add_argument("--quiet", action="store_true",
                   help="suppress progress lines")

    p = sub.add_parser(
        "serve",
        help="run the search service: an HTTP JSON endpoint accepting "
             "RunPlan submissions (submit/status/events/result)",
    )
    p.add_argument("--host", default="127.0.0.1",
                   help="bind address (default 127.0.0.1)")
    p.add_argument("--port", type=int, default=8765,
                   help="bind port (default 8765; 0 = ephemeral)")
    p.add_argument("--workers", type=int,  # not the deprecated search alias
                   default=2,
                   help="service workers = jobs in flight at once "
                        "(default 2)")
    p.add_argument("--backend", choices=("thread", "process"),
                   default="thread",
                   help="job execution backend: 'thread' runs jobs on the "
                        "worker threads (default), 'process' gives each "
                        "running job its own subprocess so GIL-bound "
                        "searches scale with cores")
    p.add_argument("--store-dir", default=None,
                   help="persist the content-addressed result store here "
                        "(default: in-memory only); also enables the "
                        "crash-consistent job journal, so a killed server "
                        "re-queues unfinished jobs on restart")
    p.add_argument("--checkpoint-dir", default=None,
                   help="snapshot jobs whose plans name no checkpoint "
                        "directory under this root (per plan hash), making "
                        "cancel-then-resubmit and crash recovery resume")
    p.add_argument("--tiling-cache-dir", default=None,
                   help="shared on-disk tiling-memo directory pool workers "
                        "read/write through (default: <store-dir>/tiling "
                        "when --store-dir is set); one worker's layer "
                        "designs then warm every other worker")
    p.add_argument("--lease-seconds", type=float, default=None,
                   help="lease term for jobs claimed by `repro agent` "
                        "workers; a lease not renewed by heartbeat within "
                        "the term expires and the job re-queues (default "
                        "15)")
    p.add_argument("--async", dest="async_gateway", action="store_true",
                   help="serve through the asyncio gateway instead of the "
                        "thread-per-connection server: adds SSE + long-"
                        "poll event streams, sustains hundreds of "
                        "concurrent clients, drains gracefully on SIGTERM")
    p.add_argument("--tenants", default=None, metavar="TENANTS_JSON",
                   help="enable multi-tenant mode from a tenants.json "
                        "config (API keys, per-tenant quotas, fair-share "
                        "weights; see docs/api.md)")
    p.add_argument("--max-pending", type=int, default=None,
                   help="bound on queued jobs before submissions get 503 "
                        "backpressure (default: unbounded)")
    p.add_argument("--max-connections", type=int, default=None,
                   help="async gateway only: cap on concurrently open "
                        "connections (503 at accept beyond it)")
    p.add_argument("--drain-grace", type=float, default=None,
                   help="async gateway only: seconds a graceful drain "
                        "waits for running jobs before checkpoint-"
                        "cancelling them (default: wait indefinitely)")

    p = sub.add_parser(
        "agent",
        help="run a federated worker agent against a coordinator: claim "
             "jobs under heartbeat-renewed leases, execute them in "
             "subprocesses, stream results back",
    )
    p.add_argument("--coordinator", default="http://127.0.0.1:8765",
                   help="coordinator base URL (a running `repro serve`; "
                        "default http://127.0.0.1:8765)")
    p.add_argument("--name", default=None,
                   help="agent name for listings/events (default host-pid)")
    p.add_argument("--agent-id", default=None,
                   help="stable agent identity to (re-)register under; "
                        "lets a restarted agent reclaim its journal-"
                        "restored leases (default: coordinator-minted)")
    p.add_argument("--poll-seconds", type=float, default=0.5,
                   help="idle sleep between claim attempts (default 0.5)")
    p.add_argument("--max-jobs", type=int, default=None,
                   help="exit after this many jobs (default: run until "
                        "SIGTERM/SIGINT)")

    p = sub.add_parser(
        "submit",
        help="submit a RunPlan JSON file to a running `repro serve`",
    )
    p.add_argument("plan", help="path to the plan JSON (as written by "
                                "--dump-plan)")
    p.add_argument("--url", default="http://127.0.0.1:8765",
                   help="service base URL (default http://127.0.0.1:8765)")
    p.add_argument("--priority", type=int, default=0,
                   help="queue priority; higher runs first (default 0)")
    p.add_argument("--no-wait", action="store_true",
                   help="return after queueing instead of waiting for the "
                        "result")
    p.add_argument("--timeout", type=float, default=3600.0,
                   help="seconds to wait for the job (default 3600)")
    p.add_argument("--output", default=None,
                   help="write the job's serialized result JSON here")
    p.add_argument("--api-key", default=None,
                   help="tenant API key for a service running with "
                        "--tenants (sent as X-API-Key)")

    p = sub.add_parser(
        "estimate",
        help="estimate one architecture's latency on a device",
    )
    p.add_argument("filter_sizes", help="comma-separated kernel sizes, "
                                        "e.g. 5,7,5,7")
    p.add_argument("filter_counts", help="comma-separated filter counts, "
                                         "e.g. 9,18,18,36")
    p.add_argument("--device", default="pynq-z1",
                   help="catalog device name (default pynq-z1)")
    p.add_argument("--boards", type=int, default=1,
                   help="replicate the device this many times")
    p.add_argument("--input-size", type=int, default=28)
    p.add_argument("--input-channels", type=int, default=1)
    p.add_argument("--simulate", action="store_true",
                   help="use the cycle simulator instead of the "
                        "closed-form analyzer")
    p.add_argument("--energy", action="store_true",
                   help="also report the analytical energy estimate")

    p = sub.add_parser(
        "store",
        help="inspect and maintain a persistent result store",
    )
    store_sub = p.add_subparsers(dest="store_command", required=True)
    g = store_sub.add_parser(
        "gc",
        help="garbage-collect dead whole-plan and shard entries plus "
             "tiling-memo cache files; entries referenced by non-terminal "
             "journal jobs are never removed",
    )
    g.add_argument("--store-dir", required=True,
                   help="the persistent store directory to collect")
    g.add_argument("--journal", default=None,
                   help="job journal whose non-terminal jobs pin entries "
                        "live (default: <store-dir>/journal.jsonl)")
    g.add_argument("--max-age", type=float, default=None,
                   help="remove dead entries at least this many seconds "
                        "old (default: age alone removes nothing)")
    g.add_argument("--max-bytes", type=int, default=None,
                   help="after age expiry, evict dead entries oldest-first "
                        "until the store fits this budget")
    g.add_argument("--dry-run", action="store_true",
                   help="report what would be removed without deleting")
    return parser


def _execution_from_args(args: argparse.Namespace) -> ExecutionPolicy:
    """Merge canonical flags and deprecated aliases into one policy."""
    eval_workers = getattr(args, "eval_workers", None)
    if getattr(args, "workers_alias", None) is not None:
        print("note: --workers is deprecated; use --eval-workers",
              file=sys.stderr)
        if eval_workers is None:
            eval_workers = args.workers_alias
    checkpoint_dir = getattr(args, "checkpoint_dir", None)
    if getattr(args, "campaign_dir_alias", None) is not None:  # deprecated
        print("note: --campaign-dir is deprecated; use --checkpoint-dir",
              file=sys.stderr)
        if checkpoint_dir is None:
            checkpoint_dir = args.campaign_dir_alias  # deprecated alias
    return ExecutionPolicy(
        batch_size=getattr(args, "batch_size", 1),
        eval_workers=1 if eval_workers is None else eval_workers,
        shard_workers=getattr(args, "shard_workers", 1),
        shard_batch_trials=getattr(args, "shard_batch_trials", None),
        checkpoint_dir=checkpoint_dir,
        checkpoint_every=getattr(args, "checkpoint_every", None),
    )


def plan_from_args(args: argparse.Namespace) -> RunPlan:
    """Lower a parsed command line onto its declarative RunPlan."""
    if args.command == "figure8":
        return RunPlan(workload="figure8")
    if args.command == "figure9":
        from repro.experiments.figure9 import FIGURE9_DEVICES, figure9_plan

        devices = (FIGURE9_DEVICES if args.devices is None
                   else tuple(args.devices))
        return figure9_plan(samples=args.samples, seed=args.seed,
                            devices=devices)
    execution = _execution_from_args(args)
    if args.command == "sweep":
        return RunPlan(
            workload="sweep",
            search=SearchPlan(trials=args.trials),
            execution=execution,
            scenario=ScenarioPlan(
                datasets=tuple(args.datasets),
                devices=tuple(args.devices),
                boards=args.boards,
                seeds=tuple(args.seeds),
                specs_ms=tuple(args.specs),
                include_nas=args.include_nas,
            ),
            output=args.output,
        )
    if args.command == "table1":
        from repro.experiments.table1 import table1_plan

        return table1_plan(trials=args.trials, seed=args.seed,
                           execution=execution)
    if args.command == "figure6":
        from repro.experiments.figure6 import figure6_plan

        return figure6_plan(trials=args.trials, seed=args.seed,
                            execution=execution)
    if args.command == "figure7":
        from repro.experiments.figure7 import figure7_plan

        return figure7_plan(trials=args.trials, seed=args.seed,
                            execution=execution)
    if args.command == "report":
        from repro.experiments.report import report_plan

        return report_plan(trials=args.trials, seed=args.seed,
                           execution=execution, output=args.output)
    if args.command == "ablations":
        return RunPlan(
            workload="ablations",
            search=SearchPlan(seed=args.seed, trials=args.trials),
            execution=execution,
        )
    raise ValueError(f"command {args.command!r} does not lower to a plan")


def _print_result(plan: RunPlan, result) -> None:
    """Render a workload result exactly as its command always has."""
    workload = plan.workload
    if workload in ("table1", "figure6", "figure7", "figure9"):
        print(result.format())
    elif workload == "figure8":
        print(result.format())
        print(f"mean improvement: {result.mean_improvement_percent:.2f}%")
    elif workload == "ablations":
        reuse, pruning = result
        print(reuse.format())
        print(pruning.format())
    elif workload == "report":
        if plan.output is None:
            print(f"report generated ({len(result.splitlines())} lines); "
                  "no output path in the plan, nothing written")
        else:
            print(f"wrote {plan.output} ({len(result.splitlines())} lines)")
    elif workload == "sweep":
        print(result.format())
        print(f"wall time: {result.wall_seconds:.2f}s; "
              f"{result.requeued_shards} shard(s) re-queued")
        if plan.output is not None:
            print(f"wrote {plan.output}")
    elif workload == "search":
        print(f"{result.name}: {len(result.trials)} trials, "
              f"best accuracy {100 * result.best().accuracy:.2f}%")
    else:  # paired
        print(f"paired outcome: NAS {len(result.nas.trials)} trials, "
              f"{len(result.fnas)} FNAS spec(s)")


def _execute_plan(plan: RunPlan, quiet: bool = True) -> int:
    """Run a plan through a Session and print its result."""
    from repro.api import Session

    session = Session.from_plan(plan)
    if not quiet:
        def printer(event):
            label = f" {event.scope}" if event.scope else ""
            print(f"[{event.kind}]{label}: {event.message}", file=sys.stderr)
        session.subscribe(printer)
    result = session.run()
    _print_result(plan, result)
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    """``repro run plan.json``: replay a dumped plan."""
    try:
        plan = load_plan(args.plan)
        if args.output is not None:
            plan = dataclasses.replace(plan, output=args.output)
        return _execute_plan(plan, quiet=args.quiet)
    except (KeyError, ValueError, TypeError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def _cmd_serve(args: argparse.Namespace) -> int:
    """``repro serve``: run the HTTP job service until shutdown."""
    from repro.service.http import make_server, run_server
    from repro.service.service import SearchService
    from repro.service.tenants import TenantRegistry

    tenants = None
    if args.tenants is not None:
        try:
            tenants = TenantRegistry.load(args.tenants)
        except (OSError, ValueError) as exc:
            print(f"error: bad tenant config {args.tenants}: {exc}",
                  file=sys.stderr)
            return 2
    service_kwargs = {
        "workers": args.workers,
        "store_dir": args.store_dir,
        "checkpoint_dir": args.checkpoint_dir,
        "backend": args.backend,
        "tiling_cache_dir": args.tiling_cache_dir,
    }
    if args.lease_seconds is not None:
        service_kwargs["lease_seconds"] = args.lease_seconds

    def report_recovery(service):
        if service.recovered_jobs:
            print(f"recovered {len(service.recovered_jobs)} unfinished "
                  "job(s) from the journal: "
                  f"{', '.join(service.recovered_jobs)}",
                  file=sys.stderr, flush=True)
        for error in service.recovery_errors:
            print(f"journal recovery skipped an entry: {error}",
                  file=sys.stderr, flush=True)

    mode = " multi-tenant" if tenants is not None else ""
    if args.async_gateway:
        from repro.service.gateway import run_gateway

        service = SearchService(**service_kwargs)
        report_recovery(service)
        print(f"serving async{mode} gateway on http://{args.host}:"
              f"{args.port} ({args.workers} {args.backend} worker(s); "
              "SSE at /jobs/<id>/events/stream; POST /shutdown or "
              "SIGTERM to drain)",
              file=sys.stderr, flush=True)
        run_gateway(
            host=args.host, port=args.port, service=service,
            tenants=tenants, max_pending=args.max_pending,
            max_connections=args.max_connections,
            drain_grace=args.drain_grace,
        )
        return 0
    server = make_server(
        host=args.host,
        port=args.port,
        tenants=tenants,
        max_pending=args.max_pending,
        **service_kwargs,
    )
    host, port = server.server_address[:2]
    report_recovery(server.service)
    print(f"serving{mode} on http://{host}:{port} "
          f"({args.workers} {args.backend} worker(s); "
          "POST /shutdown or Ctrl-C to stop)",
          file=sys.stderr, flush=True)
    run_server(server)
    return 0


def _cmd_agent(args: argparse.Namespace) -> int:
    """``repro agent``: serve a coordinator as a federated worker."""
    from urllib.error import URLError

    from repro.service.agent import run_agent
    from repro.service.client import ServiceError

    try:
        jobs = run_agent(
            args.coordinator,
            name=args.name,
            agent_id=args.agent_id,
            poll_seconds=args.poll_seconds,
            max_jobs=args.max_jobs,
        )
    except (ServiceError, URLError, TimeoutError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"agent exiting after {jobs} job(s)", file=sys.stderr, flush=True)
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    """``repro submit plan.json``: hand a plan to a running service."""
    from urllib.error import URLError

    from repro.plans import load_plan
    from repro.service.client import ServiceClient, ServiceError

    try:
        plan = load_plan(args.plan)
    except (OSError, ValueError, KeyError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    client = ServiceClient(args.url, api_key=args.api_key)
    try:
        info = client.submit(plan, priority=args.priority)
        job_id = info["job_id"]
        note = " (cache hit)" if info.get("cached") else (
            " (deduplicated)" if info.get("deduped") else "")
        print(f"job {job_id}: {info['state']}{note} "
              f"[plan {info['plan_hash'][:12]}]")
        if args.no_wait:
            return 0
        info = client.wait(job_id, timeout=args.timeout)
        print(f"job {job_id}: {info['state']}")
        if info["state"] == "done" and args.output is not None:
            try:
                blob = client.result_bytes(job_id)
            except ServiceError as exc:
                if exc.status != 406:  # 406: workload has no result codec
                    raise
                print(f"note: {info['workload']!r} results are not "
                      "serializable; nothing written", file=sys.stderr)
            else:
                from pathlib import Path

                Path(args.output).write_bytes(blob)
                print(f"wrote {args.output} ({len(blob)} bytes)")
        if info["state"] == "failed":
            print(f"error: {info.get('error')}", file=sys.stderr)
            return 1
        return 0 if info["state"] == "done" else 1
    except (ServiceError, URLError, TimeoutError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def _cmd_estimate(args: argparse.Namespace) -> int:
    sizes = [int(x) for x in args.filter_sizes.split(",")]
    counts = [int(x) for x in args.filter_counts.split(",")]
    arch = Architecture.from_choices(
        sizes, counts, input_size=args.input_size,
        input_channels=args.input_channels,
    )
    device = get_device(args.device)
    platform = Platform.replicated(device, args.boards)
    method = "simulate" if args.simulate else "analytical"
    estimate = LatencyEstimator(platform, method=method).estimate(arch)
    print(f"architecture: {arch.describe()}")
    print(f"platform:     {args.boards} x {device.name}")
    print(f"latency:      {estimate.ms:.3f} ms "
          f"({estimate.cycles} cycles, {method})")
    for layer in estimate.design.layers:
        t = layer.tiling
        print(f"  layer {layer.layer_index}: <Tm={t.tm}, Tn={t.tn}, "
              f"Tr={t.tr}, Tc={t.tc}>  PT={layer.processing_time}")
    if args.energy:
        from repro.fpga.energy import EnergyModel

        report = EnergyModel().estimate(estimate.design, estimate.cycles)
        print(f"energy:       {report.total_mj:.2f} mJ "
              f"(compute {report.compute_mj:.2f}, "
              f"memory {report.memory_mj:.2f}, "
              f"static {report.static_mj:.2f})")
    return 0


def _cmd_store(args: argparse.Namespace) -> int:
    """``repro store gc``: refcount against the journal, then collect."""
    from pathlib import Path

    from repro.service.journal import JOURNAL_FILENAME, JobJournal
    from repro.service.store import ResultStore, live_store_keys

    store_dir = Path(args.store_dir)
    if not store_dir.is_dir():
        print(f"error: store directory {store_dir} does not exist",
              file=sys.stderr)
        return 2
    journal_path = (Path(args.journal) if args.journal is not None
                    else store_dir / JOURNAL_FILENAME)
    live: frozenset[str] = frozenset()
    if journal_path.exists():
        live = live_store_keys(JobJournal.replay(journal_path))
    report = ResultStore(store_dir).gc(
        live=live,
        max_age_seconds=args.max_age,
        max_bytes=args.max_bytes,
        dry_run=args.dry_run,
    )
    print(report.format())
    return 0


def _print_notes(command: str, execution: ExecutionPolicy) -> None:
    """Pre-run advisory notes (kept from the kwarg-era CLI)."""
    if (command != "sweep" and execution.eval_workers > 1
            and execution.batch_size == 1):
        print("note: --eval-workers only takes effect with --batch-size > 1 "
              "(the sequential path evaluates one child at a time)",
              file=sys.stderr)
    if command == "ablations":
        if execution.eval_workers > 1:
            print("note: --eval-workers does not apply to the ablations "
                  "(surrogate evaluation is in-process)", file=sys.stderr)
        if execution.campaign_mode:
            print("note: checkpoint/shard flags do not apply to the "
                  "ablations (they run in-process, without "
                  "checkpointing)", file=sys.stderr)


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "estimate":
        return _cmd_estimate(args)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "agent":
        return _cmd_agent(args)
    if args.command == "submit":
        return _cmd_submit(args)
    if args.command == "store":
        return _cmd_store(args)
    try:
        plan = plan_from_args(args)
    except (KeyError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    _print_notes(args.command, plan.execution)
    if args.dump_plan is not None:
        save_plan(plan, args.dump_plan)
        print(f"wrote plan {args.dump_plan}", file=sys.stderr)
    if args.command == "sweep":
        try:
            return _execute_plan(plan, quiet=args.quiet)
        except (KeyError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    return _execute_plan(plan)


if __name__ == "__main__":
    sys.exit(main())
