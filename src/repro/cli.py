"""Command-line interface: regenerate any table/figure from the shell.

::

    python -m repro table1                 # Table 1 (MNIST on PYNQ)
    python -m repro figure6               # Figure 6 (two FPGAs)
    python -m repro figure7               # Figure 7 (three datasets)
    python -m repro figure8               # Figure 8 (scheduler study)
    python -m repro ablations             # reuse + pruning ablations
    python -m repro estimate 5,7,5,7 9,18,18,36 --device pynq-z1
    python -m repro sweep --seeds 0,1,2 --specs 5,2 --shard-workers 4

Every experiment accepts ``--seed`` and ``--trials`` so reruns and
sensitivity checks are one flag away.  ``sweep`` runs a sharded,
checkpointed campaign over a (dataset x device x seed x spec) grid;
the paired experiments (``table1``/``figure6``/``figure7``/``report``)
accept ``--campaign-dir`` / ``--shard-workers`` to run their searches
as a resumable campaign too.
"""

from __future__ import annotations

import argparse
import sys

from repro.core.architecture import Architecture
from repro.experiments.ablation import run_pruning_ablation, run_reuse_ablation
from repro.experiments.figure6 import run_figure6
from repro.experiments.figure7 import run_figure7
from repro.experiments.figure8 import run_figure8
from repro.experiments.table1 import run_table1
from repro.fpga.device import get_device
from repro.fpga.platform import Platform
from repro.latency.estimator import LatencyEstimator


def _add_search_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--seed", type=int, default=0,
                        help="RNG seed for the searches (default 0)")
    parser.add_argument("--trials", type=int, default=None,
                        help="children per search (default: Table 2's 60)")
    parser.add_argument("--batch-size", type=int, default=1,
                        help="candidates per controller step; 1 (default) "
                             "reproduces the sequential published "
                             "trajectories, >1 drives the vectorized "
                             "batched runtime")
    parser.add_argument("--workers", type=int, default=1,
                        help="process-pool workers for child evaluation "
                             "(default 1 = in-process; useful with real "
                             "training evaluators)")
    parser.add_argument("--campaign-dir", default=None,
                        help="run the experiment's searches as a "
                             "checkpointed campaign under this directory; "
                             "re-running with the same directory resumes "
                             "interrupted searches")
    parser.add_argument("--shard-workers", type=int, default=1,
                        help="process-pool workers for whole search shards "
                             "in campaign mode (default 1 = serial)")


def _int_list(text: str) -> list[int]:
    return [int(x) for x in text.split(",") if x]


def _float_list(text: str) -> list[float]:
    return [float(x) for x in text.split(",") if x]


def _str_list(text: str) -> list[str]:
    return [x for x in text.split(",") if x]


def build_parser() -> argparse.ArgumentParser:
    """The ``python -m repro`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="FNAS (DAC 2019) reproduction experiments",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    for name, help_text in (
        ("table1", "Table 1: NAS vs FNAS on MNIST targeting PYNQ"),
        ("figure6", "Figure 6: search time/latency/accuracy on two FPGAs"),
        ("figure7", "Figure 7: accuracy loss & speedup vs TS, 3 datasets"),
    ):
        p = sub.add_parser(name, help=help_text)
        _add_search_flags(p)

    sub.add_parser("figure8", help="Figure 8: FNAS-Sched vs fixed "
                                   "scheduling over 16 architectures")

    p = sub.add_parser("ablations", help="reuse-strategy and early-pruning "
                                         "ablations")
    _add_search_flags(p)

    p = sub.add_parser("report", help="run every experiment and write a "
                                      "markdown reproduction report")
    _add_search_flags(p)
    p.add_argument("--output", default="reproduction_report.md",
                   help="output path (default reproduction_report.md)")

    p = sub.add_parser(
        "sweep",
        help="run a sharded, checkpointed search campaign over a "
             "(dataset x device x seed x spec) grid",
    )
    p.add_argument("--datasets", type=_str_list, default=["mnist"],
                   help="comma-separated Table 2 datasets (default mnist)")
    p.add_argument("--devices", type=_str_list, default=["pynq-z1"],
                   help="comma-separated catalog devices (default pynq-z1)")
    p.add_argument("--seeds", type=_int_list, default=[0],
                   help="comma-separated seeds, one shard set per seed "
                        "(default 0)")
    p.add_argument("--specs", type=_float_list, default=[],
                   help="comma-separated FNAS timing specs in ms; one "
                        "FNAS shard per spec")
    p.add_argument("--include-nas", action="store_true",
                   help="also run the accuracy-only NAS baseline per "
                        "(dataset, device, seed)")
    p.add_argument("--boards", type=int, default=1,
                   help="replicate each device this many times per "
                        "platform (default 1)")
    p.add_argument("--trials", type=int, default=None,
                   help="children per shard (default: Table 2's 60)")
    p.add_argument("--batch-size", type=int, default=1,
                   help="candidates per controller step within each shard")
    p.add_argument("--eval-workers", type=int, default=1,
                   help="child-evaluation workers inside each shard "
                        "(default 1)")
    p.add_argument("--shard-workers", type=int, default=1,
                   help="how many shards run concurrently (default 1)")
    p.add_argument("--checkpoint-dir", default=None,
                   help="snapshot shards here; re-running resumes "
                        "interrupted shards from their checkpoints")
    p.add_argument("--checkpoint-every", type=int, default=None,
                   help="trials between snapshots (default: ~10 per shard)")
    p.add_argument("--output", default=None,
                   help="also write the merged campaign artifact (JSON, "
                        "per-shard ledgers + Pareto frontier) here")
    p.add_argument("--quiet", action="store_true",
                   help="suppress per-shard progress lines")

    p = sub.add_parser(
        "estimate",
        help="estimate one architecture's latency on a device",
    )
    p.add_argument("filter_sizes", help="comma-separated kernel sizes, "
                                        "e.g. 5,7,5,7")
    p.add_argument("filter_counts", help="comma-separated filter counts, "
                                         "e.g. 9,18,18,36")
    p.add_argument("--device", default="pynq-z1",
                   help="catalog device name (default pynq-z1)")
    p.add_argument("--boards", type=int, default=1,
                   help="replicate the device this many times")
    p.add_argument("--input-size", type=int, default=28)
    p.add_argument("--input-channels", type=int, default=1)
    p.add_argument("--simulate", action="store_true",
                   help="use the cycle simulator instead of the "
                        "closed-form analyzer")
    p.add_argument("--energy", action="store_true",
                   help="also report the analytical energy estimate")
    return parser


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.orchestration import (
        run_campaign,
        save_campaign_result,
        shard_grid,
    )

    progress = None
    if not args.quiet:
        def progress(event):
            label = f" {event.shard_id}" if event.shard_id else ""
            print(f"[{event.kind}]{label}: {event.message}",
                  file=sys.stderr)
    try:
        shards = shard_grid(
            datasets=args.datasets,
            devices=args.devices,
            seeds=args.seeds,
            specs_ms=args.specs,
            include_nas=args.include_nas,
            boards=args.boards,
            trials=args.trials,
            batch_size=args.batch_size,
            eval_workers=args.eval_workers,
        )
        print(f"campaign: {len(shards)} shard(s), "
              f"{args.shard_workers} worker(s)", file=sys.stderr)
        result = run_campaign(
            shards,
            max_workers=args.shard_workers,
            checkpoint_dir=args.checkpoint_dir,
            checkpoint_every=args.checkpoint_every,
            progress=progress,
        )
    except (KeyError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(result.format())
    print(f"wall time: {result.wall_seconds:.2f}s; "
          f"{result.requeued_shards} shard(s) re-queued")
    if args.output is not None:
        save_campaign_result(result, args.output)
        print(f"wrote {args.output}")
    return 0


def _cmd_estimate(args: argparse.Namespace) -> int:
    sizes = [int(x) for x in args.filter_sizes.split(",")]
    counts = [int(x) for x in args.filter_counts.split(",")]
    arch = Architecture.from_choices(
        sizes, counts, input_size=args.input_size,
        input_channels=args.input_channels,
    )
    device = get_device(args.device)
    platform = Platform.replicated(device, args.boards)
    method = "simulate" if args.simulate else "analytical"
    estimate = LatencyEstimator(platform, method=method).estimate(arch)
    print(f"architecture: {arch.describe()}")
    print(f"platform:     {args.boards} x {device.name}")
    print(f"latency:      {estimate.ms:.3f} ms "
          f"({estimate.cycles} cycles, {method})")
    for layer in estimate.design.layers:
        t = layer.tiling
        print(f"  layer {layer.layer_index}: <Tm={t.tm}, Tn={t.tn}, "
              f"Tr={t.tr}, Tc={t.tc}>  PT={layer.processing_time}")
    if args.energy:
        from repro.fpga.energy import EnergyModel

        report = EnergyModel().estimate(estimate.design, estimate.cycles)
        print(f"energy:       {report.total_mj:.2f} mJ "
              f"(compute {report.compute_mj:.2f}, "
              f"memory {report.memory_mj:.2f}, "
              f"static {report.static_mj:.2f})")
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if (getattr(args, "workers", 1) > 1
            and getattr(args, "batch_size", 1) == 1):
        print("note: --workers only takes effect with --batch-size > 1 "
              "(the sequential path evaluates one child at a time)",
              file=sys.stderr)
    if args.command == "table1":
        print(run_table1(trials=args.trials, seed=args.seed,
                         batch_size=args.batch_size,
                         parallel_workers=args.workers,
                         campaign_dir=args.campaign_dir,
                         shard_workers=args.shard_workers).format())
    elif args.command == "figure6":
        print(run_figure6(trials=args.trials, seed=args.seed,
                          batch_size=args.batch_size,
                          parallel_workers=args.workers,
                          campaign_dir=args.campaign_dir,
                          shard_workers=args.shard_workers).format())
    elif args.command == "figure7":
        print(run_figure7(trials=args.trials, seed=args.seed,
                          batch_size=args.batch_size,
                          parallel_workers=args.workers,
                          campaign_dir=args.campaign_dir,
                          shard_workers=args.shard_workers).format())
    elif args.command == "sweep":
        return _cmd_sweep(args)
    elif args.command == "figure8":
        result = run_figure8()
        print(result.format())
        print(f"mean improvement: {result.mean_improvement_percent:.2f}%")
    elif args.command == "ablations":
        if args.workers > 1:
            print("note: --workers does not apply to the ablations "
                  "(surrogate evaluation is in-process)", file=sys.stderr)
        if args.campaign_dir is not None or args.shard_workers > 1:
            print("note: --campaign-dir/--shard-workers do not apply to "
                  "the ablations (they run in-process, without "
                  "checkpointing)", file=sys.stderr)
        reuse = run_reuse_ablation()
        print(reuse.format())
        pruning = run_pruning_ablation(trials=args.trials, seed=args.seed,
                                       batch_size=args.batch_size)
        print(pruning.format())
    elif args.command == "report":
        from pathlib import Path

        from repro.experiments.report import generate_report

        text = generate_report(trials=args.trials, seed=args.seed,
                               batch_size=args.batch_size,
                               parallel_workers=args.workers,
                               campaign_dir=args.campaign_dir,
                               shard_workers=args.shard_workers)
        Path(args.output).write_text(text)
        print(f"wrote {args.output} ({len(text.splitlines())} lines)")
    elif args.command == "estimate":
        return _cmd_estimate(args)
    return 0


if __name__ == "__main__":
    sys.exit(main())
