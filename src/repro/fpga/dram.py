"""Memory-hierarchy model: effective DRAM bandwidth and phase overlap.

The flat ``FpgaDevice.bandwidth_gbps`` number hides what actually
limits an accelerator's off-chip traffic: every burst pays the DRAM
access latency before any beat moves, so short transfers see a small
fraction of the pin bandwidth while long streaming bursts approach it.
The openposeFPGA design-space explorer models this with an *effective*
bandwidth derived from the port width, the burst length and the memory
clock; :class:`DramModel` reproduces that arithmetic exactly::

    eff_bw = port_width * burst_len / 8
             / ((dram_latency + burst_len) / (fre * 1e6)) / 1e9

(``port_width`` in bits, ``burst_len`` in beats, ``fre`` in MHz,
``eff_bw`` in GB/s.)

On top of the transfer model sits the double-buffering phase picture:
while a PE computes on one buffer pair, the next task's inputs stream
into the shadow buffers and the previous task's outputs drain out, so a
steady-state task costs ``max(load, compute, write)`` cycles -- the
:class:`PhaseLatency` triple.  A layer is *compute-bound* when the
middle term dominates and *load-* or *write-bound* otherwise; which one
wins is precisely what separates bandwidth-rich from bandwidth-starved
devices on depthwise-heavy networks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

#: DRAM access latency in memory-clock cycles (openposeFPGA's constant).
DEFAULT_DRAM_LATENCY_CYCLES = 120


@dataclass(frozen=True)
class DramModel:
    """Burst-level DRAM interface model of one device.

    Attributes:
        port_width_bits: data-port width in bits (one beat moves this
            many bits per memory-clock cycle).
        burst_beats: beats per burst; every burst pays
            ``latency_cycles`` of access latency before its first beat.
        frequency_mhz: memory interface clock.
        latency_cycles: DRAM access latency in memory-clock cycles.
    """

    port_width_bits: int
    burst_beats: int
    frequency_mhz: float
    latency_cycles: int = DEFAULT_DRAM_LATENCY_CYCLES

    def __post_init__(self) -> None:
        if self.port_width_bits <= 0 or self.port_width_bits % 8 != 0:
            raise ValueError(
                f"port_width_bits must be a positive multiple of 8, got "
                f"{self.port_width_bits}"
            )
        if self.burst_beats <= 0:
            raise ValueError(
                f"burst_beats must be positive, got {self.burst_beats}"
            )
        if self.frequency_mhz <= 0:
            raise ValueError(
                f"frequency_mhz must be positive, got {self.frequency_mhz}"
            )
        if self.latency_cycles < 0:
            raise ValueError(
                f"latency_cycles must be >= 0, got {self.latency_cycles}"
            )

    @property
    def peak_bandwidth_gbps(self) -> float:
        """Pin bandwidth with latency amortised away (infinite bursts)."""
        return self.port_width_bits * self.frequency_mhz * 1e6 / 8 / 1e9

    def effective_bandwidth_gbps(self, burst_len: float) -> float:
        """Effective GB/s of a ``burst_len``-beat transfer.

        The openposeFPGA ``effective_dram_est`` formula verbatim: the
        burst's beat time plus the access latency, divided into the
        bytes it moves.
        """
        if burst_len <= 0:
            raise ValueError(f"burst_len must be positive, got {burst_len}")
        return (
            self.port_width_bits * burst_len / 8
            / ((self.latency_cycles + burst_len) / (self.frequency_mhz * 1e6))
            / 1e9
        )

    def effective_port_width_bits(self, burst_len: float) -> float:
        """Effective bits per memory-clock cycle at ``burst_len`` beats."""
        return (
            self.effective_bandwidth_gbps(burst_len) * 1e9 * 8
            / (self.frequency_mhz * 1e6)
        )

    def transfer_mem_cycles(self, n_bytes: int) -> int:
        """Memory-clock cycles to move ``n_bytes`` through the port.

        The transfer is cut into full bursts; each pays the access
        latency, then streams its beats back to back.
        """
        if n_bytes < 0:
            raise ValueError(f"n_bytes must be >= 0, got {n_bytes}")
        if n_bytes == 0:
            return 0
        beats = -(-n_bytes * 8 // self.port_width_bits)
        bursts = -(-beats // self.burst_beats)
        return bursts * self.latency_cycles + beats

    def transfer_cycles(self, n_bytes: int, accel_clock_mhz: float) -> int:
        """Accelerator-clock cycles to move ``n_bytes`` (ceil-rounded).

        The PE's phase timers tick at the accelerator clock, so the
        memory-clock transfer time is rescaled by the clock ratio.
        """
        if accel_clock_mhz <= 0:
            raise ValueError(
                f"accel_clock_mhz must be positive, got {accel_clock_mhz}"
            )
        mem_cycles = self.transfer_mem_cycles(n_bytes)
        return math.ceil(mem_cycles * accel_clock_mhz / self.frequency_mhz)


#: Phase names, in per-task order.
LOAD_PHASE = "load"
COMPUTE_PHASE = "compute"
WRITE_PHASE = "write"


@dataclass(frozen=True)
class PhaseLatency:
    """Per-task load / compute / write cycles under double-buffering.

    With double-buffered IFM/weight and OFM tiles, the three phases of
    consecutive tasks overlap, so the steady-state cost of one task is
    the *slowest* phase, not their sum.
    """

    load_cycles: int
    compute_cycles: int
    write_cycles: int

    def __post_init__(self) -> None:
        for attr in ("load_cycles", "compute_cycles", "write_cycles"):
            if getattr(self, attr) < 0:
                raise ValueError(
                    f"{attr} must be >= 0, got {getattr(self, attr)}"
                )

    @property
    def effective_cycles(self) -> int:
        """Steady-state cycles per task: ``max(load, compute, write)``."""
        return max(self.load_cycles, self.compute_cycles, self.write_cycles)

    @property
    def bound(self) -> str:
        """Which phase dominates (ties resolve in phase order)."""
        if self.load_cycles >= self.compute_cycles and (
            self.load_cycles >= self.write_cycles
        ):
            return LOAD_PHASE
        if self.compute_cycles >= self.write_cycles:
            return COMPUTE_PHASE
        return WRITE_PHASE

    @property
    def compute_bound(self) -> bool:
        """True when compute is at least as slow as both transfers."""
        return self.effective_cycles == self.compute_cycles
