"""Energy estimation for pipeline designs (extension).

The paper motivates FPGAs by their energy efficiency for low-batch
inference but only evaluates latency; energy-aware rewards are the
natural follow-on (and indeed appeared in the group's later work).
This module adds a first-order energy model over the same design
abstractions, so an energy term can be dropped into the reward:

* **dynamic compute energy**: each DSP slice burns a fixed energy per
  active MAC cycle; a PE with ``Tm x Tn`` DSPs running for ``PT``
  cycles costs ``Tm * Tn * PT * E_MAC``;
* **memory traffic energy**: every off-chip byte moved (IFM/OFM/weight
  tiles, net of the schedule's reuse) costs ``E_BYTE``;
* **static energy**: the whole platform leaks ``P_STATIC`` per device
  for the duration of the inference.

Default coefficients are representative 28 nm-class figures (order of
magnitude is what matters for design comparison): 4.5 pJ per 16-bit
MAC, 650 pJ per DRAM byte, 0.25 W static per device.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fpga.tiling import PipelineDesign
from repro.scheduling.base import IFM_REUSE, OFM_REUSE, Schedule

#: Default energy coefficients.
MAC_ENERGY_PJ = 4.5
DRAM_BYTE_ENERGY_PJ = 650.0
STATIC_WATTS_PER_DEVICE = 0.25


@dataclass(frozen=True)
class EnergyReport:
    """Energy breakdown of one inference, in millijoules."""

    compute_mj: float
    memory_mj: float
    static_mj: float

    @property
    def total_mj(self) -> float:
        """Total inference energy."""
        return self.compute_mj + self.memory_mj + self.static_mj

    @property
    def memory_share(self) -> float:
        """Fraction of the total spent moving data."""
        return self.memory_mj / self.total_mj if self.total_mj else 0.0


class EnergyModel:
    """First-order energy model over a pipeline design.

    Parameters:
        mac_energy_pj: energy per 16-bit MAC (DSP-active cycle).
        dram_byte_energy_pj: energy per off-chip byte moved.
        static_watts_per_device: leakage + clocking per board.
    """

    def __init__(
        self,
        mac_energy_pj: float = MAC_ENERGY_PJ,
        dram_byte_energy_pj: float = DRAM_BYTE_ENERGY_PJ,
        static_watts_per_device: float = STATIC_WATTS_PER_DEVICE,
    ):
        if mac_energy_pj <= 0 or dram_byte_energy_pj <= 0:
            raise ValueError("energy coefficients must be positive")
        if static_watts_per_device < 0:
            raise ValueError("static power must be >= 0")
        self.mac_energy_pj = mac_energy_pj
        self.dram_byte_energy_pj = dram_byte_energy_pj
        self.static_watts_per_device = static_watts_per_device

    def traffic_bytes(
        self, design: PipelineDesign, schedule: Schedule | None = None
    ) -> int:
        """Off-chip bytes for one inference.

        With a schedule, consecutive tasks that hold a tile constant
        (the schedule's reuse strategy) skip that tile's reload --
        design principle P2 made quantitative.  Without one, every task
        pays its full worst-case traffic.
        """
        total = 0
        for layer_idx, layer in enumerate(design.layers):
            weights = layer.weight_buffer_bytes
            ifm = layer.ifm_buffer_bytes
            ofm = layer.ofm_buffer_bytes
            tasks = layer.task_count
            if schedule is None:
                total += tasks * (weights + ifm + ofm)
                continue
            order = schedule.layer_orders[layer_idx]
            prev = None
            for task in order:
                total += weights
                if prev is None or prev.input_tile != task.input_tile:
                    total += ifm
                if prev is None or prev.output_tile != task.output_tile:
                    total += ofm
                prev = task
        return total

    def estimate(
        self,
        design: PipelineDesign,
        latency_cycles: int,
        schedule: Schedule | None = None,
    ) -> EnergyReport:
        """Energy of one inference taking ``latency_cycles`` to run."""
        if latency_cycles <= 0:
            raise ValueError(
                f"latency_cycles must be positive, got {latency_cycles}"
            )
        macs = sum(
            layer.tiling.dsps * layer.processing_time
            for layer in design.layers
        )
        compute_pj = macs * self.mac_energy_pj
        memory_pj = self.traffic_bytes(design, schedule) * self.dram_byte_energy_pj
        seconds = latency_cycles / (design.platform.clock_mhz * 1e6)
        static_w = self.static_watts_per_device * len(design.platform.devices)
        static_mj = static_w * seconds * 1e3
        return EnergyReport(
            compute_mj=compute_pj * 1e-9,
            memory_mj=memory_pj * 1e-9,
            static_mj=static_mj,
        )
