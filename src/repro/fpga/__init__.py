"""FPGA device models, multi-FPGA platforms and tiling design (FNAS-Design)."""

from repro.fpga.device import (
    DEVICE_CATALOG,
    PYNQ_Z1,
    XC7A50T,
    XC7Z020,
    XCZU9EG,
    FpgaDevice,
    get_device,
)
from repro.fpga.energy import EnergyModel, EnergyReport
from repro.fpga.platform import PeAllocation, Platform
from repro.fpga.tiling import (
    DOUBLE_BUFFER,
    WORD_BYTES,
    LayerDesign,
    PipelineDesign,
    TilingDesigner,
    TilingVector,
)

__all__ = [
    "DEVICE_CATALOG",
    "PYNQ_Z1",
    "XC7A50T",
    "XC7Z020",
    "XCZU9EG",
    "FpgaDevice",
    "get_device",
    "EnergyModel",
    "EnergyReport",
    "PeAllocation",
    "Platform",
    "DOUBLE_BUFFER",
    "WORD_BYTES",
    "LayerDesign",
    "PipelineDesign",
    "TilingDesigner",
    "TilingVector",
]
