"""Multi-FPGA platforms and per-layer PE resource allocation.

FNAS maps each convolutional layer to a dedicated processing element
(PE) and runs the PEs as a pipeline.  The pipeline may live on a single
FPGA (Shen'17 / DNNBuilder style) or be spread across several boards
(Zhang'16 / Jiang'18 style).  A :class:`Platform` is an ordered set of
:class:`~repro.fpga.device.FpgaDevice` instances plus the logic that
answers two questions:

* how many DSPs does each layer's PE get (load-balanced on the layer's
  MAC workload, the paper's "resource ... obtained by considering the
  load balance"), and
* which device does each PE live on (contiguous layer ranges, balanced
  by workload, so inter-board links only carry one layer boundary each).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.architecture import Architecture
from repro.fpga.device import FpgaDevice


@dataclass(frozen=True)
class PeAllocation:
    """Resources granted to one layer's processing element.

    ``device_index`` identifies the hosting board within the platform
    (devices may be identical objects in replicated platforms).
    """

    layer_index: int
    device: FpgaDevice
    device_index: int
    dsp_budget: int
    bram_budget_bytes: int

    def __post_init__(self) -> None:
        if self.dsp_budget <= 0:
            raise ValueError(f"dsp_budget must be positive, got {self.dsp_budget}")
        if self.bram_budget_bytes <= 0:
            raise ValueError(
                f"bram_budget_bytes must be positive, got {self.bram_budget_bytes}"
            )


class Platform:
    """An ordered collection of FPGAs hosting a PE-per-layer pipeline."""

    def __init__(self, devices: list[FpgaDevice] | tuple[FpgaDevice, ...]):
        if not devices:
            raise ValueError("a Platform needs at least one device")
        self.devices: tuple[FpgaDevice, ...] = tuple(devices)
        clocks = {d.clock_mhz for d in self.devices}
        # A heterogeneous-clock pipeline would need per-PE cycle scaling in
        # the analyzer; the paper's platforms are homogeneous, so we insist.
        if len(clocks) != 1:
            raise ValueError(
                "all devices in a Platform must share a clock; got "
                + ", ".join(f"{d.name}@{d.clock_mhz}MHz" for d in self.devices)
            )

    @classmethod
    def single(cls, device: FpgaDevice) -> "Platform":
        """Single-FPGA platform."""
        return cls([device])

    @classmethod
    def replicated(cls, device: FpgaDevice, count: int) -> "Platform":
        """Homogeneous multi-FPGA platform of ``count`` copies of ``device``."""
        if count <= 0:
            raise ValueError(f"count must be positive, got {count}")
        return cls([device] * count)

    @property
    def clock_mhz(self) -> float:
        """Pipeline clock (identical across devices by construction)."""
        return self.devices[0].clock_mhz

    @property
    def total_dsps(self) -> int:
        """DSP slices summed over all devices."""
        return sum(d.dsp_slices for d in self.devices)

    def cycles_to_ms(self, cycles: float) -> float:
        """Convert pipeline cycles to milliseconds at the platform clock."""
        return self.devices[0].cycles_to_ms(cycles)

    def ms_to_cycles(self, ms: float) -> float:
        """Convert a millisecond spec into a cycle budget."""
        return self.devices[0].ms_to_cycles(ms)

    # -- allocation --------------------------------------------------------

    def allocate(self, architecture: Architecture) -> list[PeAllocation]:
        """Assign every layer a device, a DSP budget and a BRAM budget.

        Layers are first partitioned into contiguous ranges across the
        devices so that per-device MAC workload is as even as possible
        (greedy prefix split on cumulative workload).  Within a device,
        DSPs are split between its layers proportionally to layer MACs,
        with every layer guaranteed at least one DSP.
        """
        layer_macs = [layer.macs for layer in architecture.layers]
        ranges = self._partition_layers(layer_macs, len(self.devices))
        allocations: list[PeAllocation] = []
        for device_index, (device, (start, stop)) in enumerate(
            zip(self.devices, ranges)
        ):
            if start == stop:
                continue
            macs = layer_macs[start:stop]
            budgets = _proportional_split(device.dsp_slices, macs)
            bram_each = device.bram_bytes // (stop - start)
            for offset, dsp in enumerate(budgets):
                allocations.append(
                    PeAllocation(
                        layer_index=start + offset,
                        device=device,
                        device_index=device_index,
                        dsp_budget=dsp,
                        bram_budget_bytes=max(1, bram_each),
                    )
                )
        allocations.sort(key=lambda a: a.layer_index)
        return allocations

    @staticmethod
    def _partition_layers(
        layer_macs: list[int], device_count: int
    ) -> list[tuple[int, int]]:
        """Split layers into ``device_count`` contiguous ``[start, stop)`` ranges.

        Greedy walk over the prefix sums: a device takes layers until its
        share of the remaining workload is met.  Trailing devices may
        receive empty ranges when there are fewer layers than devices.
        """
        n_layers = len(layer_macs)
        if device_count == 1:
            return [(0, n_layers)]
        total = sum(layer_macs)
        ranges: list[tuple[int, int]] = []
        start = 0
        remaining_work = total
        for device_idx in range(device_count):
            devices_left = device_count - device_idx
            layers_left = n_layers - start
            if layers_left <= 0:
                ranges.append((start, start))
                continue
            if devices_left >= layers_left:
                # One layer per remaining device.
                ranges.append((start, start + 1))
                remaining_work -= layer_macs[start]
                start += 1
                continue
            target = remaining_work / devices_left
            stop = start
            acc = 0
            while stop < n_layers - (devices_left - 1):
                next_acc = acc + layer_macs[stop]
                if acc > 0 and abs(acc - target) <= abs(next_acc - target):
                    break
                acc = next_acc
                stop += 1
            ranges.append((start, stop))
            remaining_work -= acc
            start = stop
        return ranges


def _proportional_split(budget: int, weights: list[int]) -> list[int]:
    """Split ``budget`` integer units proportionally to ``weights``.

    Every recipient gets at least 1 unit; leftovers go to the largest
    weights first (stable on ties).
    """
    count = len(weights)
    if count == 0:
        return []
    if budget < count:
        raise ValueError(
            f"budget {budget} too small to give {count} layers one DSP each"
        )
    total = sum(weights)
    if total == 0:
        base = budget // count
        shares = [base] * count
    else:
        shares = [max(1, int(budget * w / total)) for w in weights]
    # Trim any overshoot caused by the max(1, ...) floor, taking from the
    # largest shares first.
    while sum(shares) > budget:
        idx = max(range(count), key=lambda i: shares[i])
        if shares[idx] <= 1:
            break
        shares[idx] -= 1
    # Distribute leftovers to the heaviest layers.
    leftover = budget - sum(shares)
    order = sorted(range(count), key=lambda i: weights[i], reverse=True)
    pos = 0
    while leftover > 0:
        shares[order[pos % count]] += 1
        leftover -= 1
        pos += 1
    return shares
