"""FPGA device resource models.

The paper evaluates FNAS against four Xilinx parts: the PYNQ-Z1 board
(a Zynq XC7Z020 SoC), a low-end Artix-7 XC7A50T, the Zynq XC7Z020
itself, and the high-end Zynq UltraScale+ XCZU9EG.  FNAS never measures
on silicon during the search -- all latency estimation goes through the
analytical model -- so a device here is exactly the resource vector that
model needs:

* ``dsp_slices``     -- number of DSP48 slices; a processing element (PE)
  built from ``Tm x Tn`` DSPs executes that many 16-bit MACs per cycle
  (Zhang et al., FPGA'15).
* ``bram_kbytes``    -- on-chip block RAM capacity, which bounds the
  spatial tile sizes ``Tr x Tc`` (input/output tile buffers and the
  weight buffer must fit, double-buffered).
* ``bandwidth_gbps`` -- off-chip memory bandwidth available to the
  accelerator, used by the communication model.
* ``clock_mhz``      -- accelerator clock, converting cycles to seconds.

Resource numbers come from the public Xilinx datasheets (DS180, DS190,
DS891); the board-level bandwidth figures are the usual DDR3/DDR4
configurations of the respective dev boards.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.fpga.dram import DramModel
from repro.registry import DEVICES


@dataclass(frozen=True)
class FpgaDevice:
    """Resource model of a single FPGA (or the PL side of an SoC).

    Instances are immutable; derive variants with :meth:`scaled`.

    ``dram`` is optional: devices without it keep the flat
    ``bandwidth_gbps`` memory model (the seed behavior, pinned
    byte-identical by the golden ledger); devices with it get
    burst-level effective bandwidth and load/compute/write phase
    overlap throughout the latency stack.
    """

    name: str
    dsp_slices: int
    bram_kbytes: int
    bandwidth_gbps: float
    clock_mhz: float
    dram: DramModel | None = None

    def __post_init__(self) -> None:
        if self.dsp_slices <= 0:
            raise ValueError(f"dsp_slices must be positive, got {self.dsp_slices}")
        if self.bram_kbytes <= 0:
            raise ValueError(f"bram_kbytes must be positive, got {self.bram_kbytes}")
        if self.bandwidth_gbps <= 0:
            raise ValueError(
                f"bandwidth_gbps must be positive, got {self.bandwidth_gbps}"
            )
        if self.clock_mhz <= 0:
            raise ValueError(f"clock_mhz must be positive, got {self.clock_mhz}")

    @property
    def cycle_time_us(self) -> float:
        """Duration of one clock cycle in microseconds."""
        return 1.0 / self.clock_mhz

    @property
    def bram_bytes(self) -> int:
        """On-chip buffer capacity in bytes."""
        return self.bram_kbytes * 1024

    @property
    def bytes_per_cycle(self) -> float:
        """Off-chip bytes transferable per accelerator clock cycle."""
        bytes_per_us = self.bandwidth_gbps * 1e9 / 8.0 / 1e6
        return bytes_per_us * self.cycle_time_us

    def cycles_to_ms(self, cycles: float) -> float:
        """Convert a cycle count at this device's clock into milliseconds."""
        if cycles < 0:
            raise ValueError(f"cycles must be non-negative, got {cycles}")
        return cycles / (self.clock_mhz * 1e3)

    def ms_to_cycles(self, ms: float) -> float:
        """Convert a millisecond budget into a cycle budget at this clock."""
        if ms < 0:
            raise ValueError(f"ms must be non-negative, got {ms}")
        return ms * self.clock_mhz * 1e3

    def scaled(
        self,
        factor: float | None = None,
        name: str | None = None,
        *,
        compute: float | None = None,
        memory: float | None = None,
    ) -> "FpgaDevice":
        """Return a copy with explicit resource axes scaled.

        ``factor`` scales *both* axes (the historical uniform behavior);
        the keyword-only ``compute`` and ``memory`` factors scale one
        axis each and may be combined:

        * **compute** -- ``dsp_slices`` (PE parallelism);
        * **memory**  -- ``bram_kbytes`` and the flat ``bandwidth_gbps``.

        The burst-level ``dram`` model is deliberately **never** scaled:
        its port width, burst length and latency are interface facts, not
        a capacity dial, and silently multiplying them would distort
        every derived effective-bandwidth curve.  Derive DRAM variants
        explicitly with ``dataclasses.replace(device, dram=...)``.

        Useful for what-if exploration ("would half a ZU9EG still meet
        the spec?") and for synthesizing device families in tests.
        """
        if factor is not None and (compute is not None or memory is not None):
            raise ValueError(
                "pass either the uniform factor or compute=/memory=, not both"
            )
        if factor is None and compute is None and memory is None:
            raise ValueError("scaled() needs a factor (uniform or per-axis)")
        compute_factor = factor if factor is not None else compute
        memory_factor = factor if factor is not None else memory
        for label, value in (("factor", factor), ("compute", compute),
                             ("memory", memory)):
            if value is not None and value <= 0:
                raise ValueError(f"{label} must be positive, got {value}")
        if name is None:
            if factor is not None:
                name = f"{self.name}x{factor:g}"
            else:
                parts = []
                if compute is not None:
                    parts.append(f"c{compute:g}")
                if memory is not None:
                    parts.append(f"m{memory:g}")
                name = f"{self.name}x" + "".join(parts)
        changes: dict = {"name": name}
        if compute_factor is not None:
            changes["dsp_slices"] = max(1, int(self.dsp_slices * compute_factor))
        if memory_factor is not None:
            changes["bram_kbytes"] = max(
                1, int(self.bram_kbytes * memory_factor)
            )
            changes["bandwidth_gbps"] = self.bandwidth_gbps * memory_factor
        return dataclasses.replace(self, **changes)


# --- Device catalog -------------------------------------------------------
#
# DSP and BRAM capacities from the Xilinx 7-series / UltraScale+ product
# tables.  BRAM is quoted in KB of block RAM (36Kb blocks x count / 8).

XC7A50T = FpgaDevice(
    name="xc7a50t",
    dsp_slices=120,
    bram_kbytes=300,  # 75 x 36Kb blocks
    bandwidth_gbps=3.2,
    clock_mhz=100.0,
)
"""Low-end Artix-7 used for the Figure 6 low-end comparison."""

XC7Z020 = FpgaDevice(
    name="xc7z020",
    dsp_slices=220,
    bram_kbytes=630,  # 140 x 36Kb blocks
    bandwidth_gbps=4.2,
    clock_mhz=100.0,
)
"""Zynq-7020 PL fabric -- the high-end device of the MNIST experiments."""

PYNQ_Z1 = FpgaDevice(
    name="pynq-z1",
    dsp_slices=220,
    bram_kbytes=630,
    bandwidth_gbps=4.2,
    clock_mhz=100.0,
)
"""PYNQ-Z1 board (XC7Z020 SoC) -- the Table 1 / Figure 8 target."""

XCZU9EG = FpgaDevice(
    name="xczu9eg",
    dsp_slices=2520,
    bram_kbytes=4075,  # 912 x 36Kb blocks, rounded per DS891
    bandwidth_gbps=19.2,
    # Same conservative pipeline clock as the 7-series parts: DAC-era
    # HLS accelerator designs commonly closed timing around 100 MHz,
    # and a uniform clock keeps the cross-device comparisons of
    # Figure 6 resource-driven rather than clock-driven.
    clock_mhz=100.0,
)
"""Zynq UltraScale+ ZU9EG used for the CIFAR-10 / ImageNet experiments."""


# --- DRAM-modeled variants -------------------------------------------------
#
# Two XC7Z020-class parts that share the compute fabric (DSP/BRAM/clock)
# but differ only in the memory hierarchy: a wide high-clock DDR port
# with long bursts vs a narrow low-clock one with short bursts.  The
# pair is what the figure9 experiment sweeps -- any latency ranking
# difference between them is purely memory-hierarchy-driven.  Their
# ``bandwidth_gbps`` is set to the DRAM model's peak so the flat number
# stays an honest upper bound for code that ignores ``dram``.

XC7Z020_DDR_WIDE = FpgaDevice(
    name="xc7z020-ddr-wide",
    dsp_slices=220,
    bram_kbytes=630,
    bandwidth_gbps=12.8,  # peak of the 512-bit @ 200 MHz port below
    clock_mhz=100.0,
    dram=DramModel(port_width_bits=512, burst_beats=256, frequency_mhz=200.0),
)
"""Bandwidth-rich Zynq-7020 variant: wide port, long bursts."""

XC7Z020_DDR_NARROW = FpgaDevice(
    name="xc7z020-ddr-narrow",
    dsp_slices=220,
    bram_kbytes=630,
    bandwidth_gbps=0.4,  # peak of the 32-bit @ 100 MHz port below
    clock_mhz=100.0,
    dram=DramModel(port_width_bits=32, burst_beats=16, frequency_mhz=100.0),
)
"""Bandwidth-starved Zynq-7020 variant: narrow port, short bursts."""


#: The catalog is the :data:`repro.registry.DEVICES` registry itself (a
#: read-only mapping of name -> :class:`FpgaDevice`), so third-party
#: devices registered via ``DEVICES.register(name, device)`` show up in
#: every lookup, plan validation and CLI flag automatically.
DEVICE_CATALOG = DEVICES

for _device in (XC7A50T, XC7Z020, PYNQ_Z1, XCZU9EG,
                XC7Z020_DDR_WIDE, XC7Z020_DDR_NARROW):
    DEVICES.register(_device.name, _device)
del _device


def get_device(name: str) -> FpgaDevice:
    """Look up a device by catalog name.

    Raises ``KeyError`` with the list of known names on a miss.
    """
    return DEVICES[name]
