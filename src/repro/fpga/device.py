"""FPGA device resource models.

The paper evaluates FNAS against four Xilinx parts: the PYNQ-Z1 board
(a Zynq XC7Z020 SoC), a low-end Artix-7 XC7A50T, the Zynq XC7Z020
itself, and the high-end Zynq UltraScale+ XCZU9EG.  FNAS never measures
on silicon during the search -- all latency estimation goes through the
analytical model -- so a device here is exactly the resource vector that
model needs:

* ``dsp_slices``     -- number of DSP48 slices; a processing element (PE)
  built from ``Tm x Tn`` DSPs executes that many 16-bit MACs per cycle
  (Zhang et al., FPGA'15).
* ``bram_kbytes``    -- on-chip block RAM capacity, which bounds the
  spatial tile sizes ``Tr x Tc`` (input/output tile buffers and the
  weight buffer must fit, double-buffered).
* ``bandwidth_gbps`` -- off-chip memory bandwidth available to the
  accelerator, used by the communication model.
* ``clock_mhz``      -- accelerator clock, converting cycles to seconds.

Resource numbers come from the public Xilinx datasheets (DS180, DS190,
DS891); the board-level bandwidth figures are the usual DDR3/DDR4
configurations of the respective dev boards.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.registry import DEVICES


@dataclass(frozen=True)
class FpgaDevice:
    """Resource model of a single FPGA (or the PL side of an SoC).

    Instances are immutable; derive variants with :meth:`scaled`.
    """

    name: str
    dsp_slices: int
    bram_kbytes: int
    bandwidth_gbps: float
    clock_mhz: float

    def __post_init__(self) -> None:
        if self.dsp_slices <= 0:
            raise ValueError(f"dsp_slices must be positive, got {self.dsp_slices}")
        if self.bram_kbytes <= 0:
            raise ValueError(f"bram_kbytes must be positive, got {self.bram_kbytes}")
        if self.bandwidth_gbps <= 0:
            raise ValueError(
                f"bandwidth_gbps must be positive, got {self.bandwidth_gbps}"
            )
        if self.clock_mhz <= 0:
            raise ValueError(f"clock_mhz must be positive, got {self.clock_mhz}")

    @property
    def cycle_time_us(self) -> float:
        """Duration of one clock cycle in microseconds."""
        return 1.0 / self.clock_mhz

    @property
    def bram_bytes(self) -> int:
        """On-chip buffer capacity in bytes."""
        return self.bram_kbytes * 1024

    @property
    def bytes_per_cycle(self) -> float:
        """Off-chip bytes transferable per accelerator clock cycle."""
        bytes_per_us = self.bandwidth_gbps * 1e9 / 8.0 / 1e6
        return bytes_per_us * self.cycle_time_us

    def cycles_to_ms(self, cycles: float) -> float:
        """Convert a cycle count at this device's clock into milliseconds."""
        if cycles < 0:
            raise ValueError(f"cycles must be non-negative, got {cycles}")
        return cycles / (self.clock_mhz * 1e3)

    def ms_to_cycles(self, ms: float) -> float:
        """Convert a millisecond budget into a cycle budget at this clock."""
        if ms < 0:
            raise ValueError(f"ms must be non-negative, got {ms}")
        return ms * self.clock_mhz * 1e3

    def scaled(self, factor: float, name: str | None = None) -> "FpgaDevice":
        """Return a copy with DSP/BRAM/bandwidth scaled by ``factor``.

        Useful for what-if exploration ("would half a ZU9EG still meet
        the spec?") and for synthesizing device families in tests.
        """
        if factor <= 0:
            raise ValueError(f"factor must be positive, got {factor}")
        return dataclasses.replace(
            self,
            name=name if name is not None else f"{self.name}x{factor:g}",
            dsp_slices=max(1, int(self.dsp_slices * factor)),
            bram_kbytes=max(1, int(self.bram_kbytes * factor)),
            bandwidth_gbps=self.bandwidth_gbps * factor,
        )


# --- Device catalog -------------------------------------------------------
#
# DSP and BRAM capacities from the Xilinx 7-series / UltraScale+ product
# tables.  BRAM is quoted in KB of block RAM (36Kb blocks x count / 8).

XC7A50T = FpgaDevice(
    name="xc7a50t",
    dsp_slices=120,
    bram_kbytes=300,  # 75 x 36Kb blocks
    bandwidth_gbps=3.2,
    clock_mhz=100.0,
)
"""Low-end Artix-7 used for the Figure 6 low-end comparison."""

XC7Z020 = FpgaDevice(
    name="xc7z020",
    dsp_slices=220,
    bram_kbytes=630,  # 140 x 36Kb blocks
    bandwidth_gbps=4.2,
    clock_mhz=100.0,
)
"""Zynq-7020 PL fabric -- the high-end device of the MNIST experiments."""

PYNQ_Z1 = FpgaDevice(
    name="pynq-z1",
    dsp_slices=220,
    bram_kbytes=630,
    bandwidth_gbps=4.2,
    clock_mhz=100.0,
)
"""PYNQ-Z1 board (XC7Z020 SoC) -- the Table 1 / Figure 8 target."""

XCZU9EG = FpgaDevice(
    name="xczu9eg",
    dsp_slices=2520,
    bram_kbytes=4075,  # 912 x 36Kb blocks, rounded per DS891
    bandwidth_gbps=19.2,
    # Same conservative pipeline clock as the 7-series parts: DAC-era
    # HLS accelerator designs commonly closed timing around 100 MHz,
    # and a uniform clock keeps the cross-device comparisons of
    # Figure 6 resource-driven rather than clock-driven.
    clock_mhz=100.0,
)
"""Zynq UltraScale+ ZU9EG used for the CIFAR-10 / ImageNet experiments."""


#: The catalog is the :data:`repro.registry.DEVICES` registry itself (a
#: read-only mapping of name -> :class:`FpgaDevice`), so third-party
#: devices registered via ``DEVICES.register(name, device)`` show up in
#: every lookup, plan validation and CLI flag automatically.
DEVICE_CATALOG = DEVICES

for _device in (XC7A50T, XC7Z020, PYNQ_Z1, XCZU9EG):
    DEVICES.register(_device.name, _device)
del _device


def get_device(name: str) -> FpgaDevice:
    """Look up a device by catalog name.

    Raises ``KeyError`` with the list of known names on a miss.
    """
    return DEVICES[name]
