"""FNAS-Design: tiling parameter selection (paper Section 3.3).

An FPGA cannot hold a whole convolutional layer, so each layer is split
into tiles along four dimensions, giving the design vector
``<Tm, Tn, Tr, Tc>``:

* ``Tn`` -- input feature-map (IFM) channels per tile; the IFM is cut
  into ``ceil(N / Tn)`` channel tiles,
* ``Tm`` -- output feature-map (OFM) channels per tile, ``ceil(M / Tm)``
  channel tiles,
* ``Tr``, ``Tc`` -- OFM rows/columns per tile, ``ceil(R/Tr) * ceil(C/Tc)``
  row/col tiles.

A processing element built from ``Tm x Tn`` DSP slices executes one
*task* -- one (IFM-channel-tile, OFM-channel-tile, row/col-tile) triple --
in ``Kh * Kw * Tr * Tc`` cycles (Zhang et al., FPGA'15 unrolling).

This module selects the vector per layer given a PE's DSP and BRAM
budget.  Channel tiling is chosen to minimise the layer's total compute
cycles (equivalently the ceil-division waste) under the DSP constraint;
spatial tiling maximises the tile area that still fits the double-
buffered on-chip buffers, which maximises data reuse (design principle
P2) at the cost of a slightly later downstream start -- the
:class:`~repro.latency.explorer.DesignExplorer` can revisit that
trade-off with the full analytical model in the loop.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.architecture import Architecture, ConvLayerSpec
from repro.fpga.dram import PhaseLatency
from repro.fpga.platform import PeAllocation, Platform

#: bytes per fixed-point feature/weight word (the paper uses 16-bit).
WORD_BYTES = 2

#: double-buffering factor: compute on one buffer while loading the next.
DOUBLE_BUFFER = 2


@dataclass(frozen=True)
class TilingVector:
    """The raw ``<Tm, Tn, Tr, Tc>`` design parameters for one layer."""

    tm: int
    tn: int
    tr: int
    tc: int

    def __post_init__(self) -> None:
        for attr in ("tm", "tn", "tr", "tc"):
            value = getattr(self, attr)
            if value <= 0:
                raise ValueError(f"{attr} must be positive, got {value}")

    @property
    def dsps(self) -> int:
        """DSP slices consumed: the PE unrolls ``Tm x Tn`` MACs."""
        return self.tm * self.tn


@dataclass(frozen=True)
class LayerDesign:
    """A layer bound to a PE with a concrete tiling vector.

    All tile-count and timing quantities used by FNAS-GG, FNAS-Sched and
    FNAS-Analyzer are derived here once.
    """

    layer_index: int
    spec: ConvLayerSpec
    tiling: TilingVector
    phases: PhaseLatency | None = None

    def __post_init__(self) -> None:
        if self.spec.is_depthwise and self.tiling.tm != self.tiling.tn:
            raise ValueError(
                f"layer {self.layer_index}: depthwise tiling needs Tm == Tn, "
                f"got Tm={self.tiling.tm} Tn={self.tiling.tn}"
            )
        if self.tiling.tm > self.spec.out_channels:
            raise ValueError(
                f"layer {self.layer_index}: Tm {self.tiling.tm} exceeds "
                f"out_channels {self.spec.out_channels}"
            )
        if self.tiling.tn > self.spec.in_channels:
            raise ValueError(
                f"layer {self.layer_index}: Tn {self.tiling.tn} exceeds "
                f"in_channels {self.spec.in_channels}"
            )
        if self.tiling.tr > self.spec.out_rows:
            raise ValueError(
                f"layer {self.layer_index}: Tr {self.tiling.tr} exceeds "
                f"out_rows {self.spec.out_rows}"
            )
        if self.tiling.tc > self.spec.out_cols:
            raise ValueError(
                f"layer {self.layer_index}: Tc {self.tiling.tc} exceeds "
                f"out_cols {self.spec.out_cols}"
            )

    # -- tile counts (paper's |CH_ifm|, |CH_ofm|, |RC|) ---------------------

    @property
    def n_ifm_channel_tiles(self) -> int:
        """``ceil(N / Tn)`` -- IFM channel tiles."""
        return -(-self.spec.in_channels // self.tiling.tn)

    @property
    def n_ofm_channel_tiles(self) -> int:
        """``ceil(M / Tm)`` -- OFM channel tiles."""
        return -(-self.spec.out_channels // self.tiling.tm)

    @property
    def n_row_tiles(self) -> int:
        """``ceil(R / Tr)``."""
        return -(-self.spec.out_rows // self.tiling.tr)

    @property
    def n_col_tiles(self) -> int:
        """``ceil(C / Tc)``."""
        return -(-self.spec.out_cols // self.tiling.tc)

    @property
    def n_rc_tiles(self) -> int:
        """``ceil(R/Tr) * ceil(C/Tc)`` -- row/col tiles (paper's ``|RC|``)."""
        return self.n_row_tiles * self.n_col_tiles

    @property
    def task_count(self) -> int:
        """Tasks executed by this PE per inference.

        Depthwise layers have no channel reduction: each channel tile is
        both the input and the output of its tasks, so the counts do not
        multiply.
        """
        if self.spec.is_depthwise:
            return self.n_ofm_channel_tiles * self.n_rc_tiles
        return (self.n_ifm_channel_tiles * self.n_ofm_channel_tiles
                * self.n_rc_tiles)

    @property
    def dsps(self) -> int:
        """DSP slices this PE consumes.

        A standard PE unrolls ``Tm x Tn`` MACs; a depthwise PE has one
        multiplier lane per channel (``Tm``), there is no cross-channel
        reduction tree to feed.
        """
        if self.spec.is_depthwise:
            return self.tiling.tm
        return self.tiling.dsps

    # -- timing -------------------------------------------------------------

    @property
    def execution_time(self) -> int:
        """Cycles for one task: ``Kh * Kw * Tr * Tc`` (paper's ``ET_i``)."""
        return (self.spec.kernel * self.spec.kernel
                * self.tiling.tr * self.tiling.tc)

    @property
    def processing_time(self) -> int:
        """Cycles to process the whole layer (paper's ``PT_i``).

        Equation (2) of the paper writes ``ET x |CH_ifm| x |CH_ofm|``;
        the row/col tile count is required for the totals to equal the
        layer's MAC workload divided by the PE's MAC throughput (as the
        example graph in Figure 3(e) shows), so it is included here.
        """
        return self.execution_time * self.task_count

    @property
    def effective_execution_time(self) -> int:
        """Steady-state cycles per task under phase overlap.

        Without a :class:`~repro.fpga.dram.PhaseLatency` attached (the
        flat-bandwidth memory model) this *is* ``execution_time``, which
        is what keeps DRAM-less devices byte-identical to the seed; with
        one, a task costs ``max(load, compute, write)`` because the
        double-buffered phases of consecutive tasks overlap.
        """
        if self.phases is None:
            return self.execution_time
        return self.phases.effective_cycles

    @property
    def effective_processing_time(self) -> int:
        """Whole-layer cycles under phase overlap."""
        return self.effective_execution_time * self.task_count

    # -- memory -------------------------------------------------------------

    @property
    def ifm_buffer_bytes(self) -> int:
        """On-chip IFM tile buffer: ``Tn`` channels of the input window."""
        window_rows = self.tiling.tr * self.spec.stride + self.spec.kernel - 1
        window_cols = self.tiling.tc * self.spec.stride + self.spec.kernel - 1
        return self.tiling.tn * window_rows * window_cols * WORD_BYTES

    @property
    def ofm_buffer_bytes(self) -> int:
        """On-chip OFM tile buffer."""
        return self.tiling.tm * self.tiling.tr * self.tiling.tc * WORD_BYTES

    @property
    def weight_buffer_bytes(self) -> int:
        """On-chip weight buffer for one task's filter block.

        ``Tm x Tn`` filters for a standard conv; one ``KxK`` filter per
        channel lane (``Tn``) for depthwise.
        """
        if self.spec.is_depthwise:
            return (self.tiling.tn
                    * self.spec.kernel * self.spec.kernel * WORD_BYTES)
        return (self.tiling.tm * self.tiling.tn
                * self.spec.kernel * self.spec.kernel * WORD_BYTES)

    @property
    def bram_bytes(self) -> int:
        """Total double-buffered on-chip storage for this PE."""
        return DOUBLE_BUFFER * (
            self.ifm_buffer_bytes + self.ofm_buffer_bytes
            + self.weight_buffer_bytes
        )

    @property
    def task_data_bytes(self) -> int:
        """Off-chip bytes moved per task with no reuse (worst case)."""
        return (self.ifm_buffer_bytes + self.ofm_buffer_bytes
                + self.weight_buffer_bytes)


@dataclass(frozen=True)
class PipelineDesign:
    """A full per-layer-PE design for an architecture on a platform."""

    architecture: Architecture
    platform: Platform
    layers: tuple[LayerDesign, ...]
    allocations: tuple[PeAllocation, ...]

    def __post_init__(self) -> None:
        if len(self.layers) != self.architecture.depth:
            raise ValueError(
                f"{len(self.layers)} layer designs for a depth-"
                f"{self.architecture.depth} architecture"
            )

    @property
    def total_dsps_used(self) -> int:
        """DSPs consumed by all PEs (kind-aware: depthwise PEs use Tm)."""
        return sum(d.dsps for d in self.layers)

    def layer(self, index: int) -> LayerDesign:
        """The design of layer ``index``."""
        return self.layers[index]


@dataclass
class MemoStats:
    """Hit/miss counters for a design-reuse memo."""

    hits: int = 0
    misses: int = 0

    @property
    def lookups(self) -> int:
        """Total memo queries."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered from the memo (0.0 when unused)."""
        return self.hits / self.lookups if self.lookups else 0.0


#: Process-wide tiling-memo counters, keyed by layer-kind bucket plus an
#: ``"all"`` total.  Every :class:`LayerDesignMemo` bumps these alongside
#: its own counters, so the service front ends can report estimator
#: cache behavior in ``/metrics`` without holding references to the
#: per-job estimators that own the memos.
PROCESS_MEMO_STATS: dict[str, MemoStats] = {}

_PROCESS_STATS_LOCK = threading.Lock()


def process_memo_snapshot() -> dict[str, dict[str, float]]:
    """JSON-ready view of the process-wide tiling-memo counters."""
    with _PROCESS_STATS_LOCK:
        return {
            kind: {
                "hits": stats.hits,
                "misses": stats.misses,
                "hit_rate": round(stats.hit_rate, 4),
            }
            for kind, stats in sorted(PROCESS_MEMO_STATS.items())
        }


def reset_process_memo_stats() -> None:
    """Zero the process-wide counters (test isolation)."""
    with _PROCESS_STATS_LOCK:
        PROCESS_MEMO_STATS.clear()


def _bump_process_stats(bucket: str, hit: bool) -> None:
    with _PROCESS_STATS_LOCK:
        for kind in ("all", bucket):
            stats = PROCESS_MEMO_STATS.setdefault(kind, MemoStats())
            if hit:
                stats.hits += 1
            else:
                stats.misses += 1


def _bump_disk_stats(hit: bool) -> None:
    """Count a disk-tier consultation (memory-tier misses only).

    Deliberately *not* folded into the ``"all"`` bucket: ``all`` keeps
    meaning "memory-tier lookups" so pre-existing dashboards and tests
    read unchanged, and the ``disk`` bucket's hit rate directly answers
    "is the shared on-disk memo warming this worker?".
    """
    with _PROCESS_STATS_LOCK:
        stats = PROCESS_MEMO_STATS.setdefault("disk", MemoStats())
        if hit:
            stats.hits += 1
        else:
            stats.misses += 1


class TilingDiskCache:
    """Tier 2 of the tiling memo: a shared on-disk cache directory.

    Workers in a :class:`~repro.service.pool.WorkerPool` each own a
    process-private :class:`LayerDesignMemo` (tier 1).  Pointing them
    all at one ``TilingDiskCache`` -- conventionally
    ``<result-store>/tiling`` -- makes tiling selection a fleet-wide
    pure-function cache: worker N's layer enumeration warms worker M,
    and a campaign resumed tomorrow starts with yesterday's designs.

    The file contract mirrors :class:`~repro.service.store.ResultStore`:

    * keys are SHA-256 hashes of the canonical JSON of the inputs
      (layer spec fields, resource budgets, spatial strategy) -- the
      same canonical-hash idiom the store uses for plans;
    * entries are single JSON files written via temp-file +
      :func:`os.replace`, so concurrent writers race benignly (same
      key => same pure-function value) and readers never see a partial
      write in place;
    * a torn, truncated or otherwise invalid file is a **silent
      miss** -- the tiling is recomputed and the entry rewritten --
      exactly the corrupt-entry contract of ``ResultStore.get_bytes``;
    * :meth:`~repro.service.store.ResultStore.gc` ages and
      budget-evicts these files alongside result entries (they are
      always evictable: every entry is a recomputable cache line).

    All I/O errors are swallowed: a read-only or vanished cache
    directory degrades to the in-memory memo, never to a crash.
    """

    def __init__(self, directory: str):
        self.directory = Path(directory)
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
        except OSError:
            pass

    @staticmethod
    def entry_key(
        spec: ConvLayerSpec,
        dsp_budget: int,
        bram_budget_bytes: int,
        spatial_strategy: str,
    ) -> str:
        """Canonical hash of everything tiling selection depends on."""
        canonical = json.dumps(
            {
                "spec": {
                    "in_channels": spec.in_channels,
                    "out_channels": spec.out_channels,
                    "kernel": spec.kernel,
                    "in_rows": spec.in_rows,
                    "in_cols": spec.in_cols,
                    "stride": spec.stride,
                    "kind": spec.kind,
                },
                "dsp_budget": dsp_budget,
                "bram_budget_bytes": bram_budget_bytes,
                "spatial_strategy": spatial_strategy,
            },
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def _path(self, key: str) -> Path:
        return self.directory / f"{key}.json"

    def get(
        self,
        spec: ConvLayerSpec,
        dsp_budget: int,
        bram_budget_bytes: int,
        spatial_strategy: str,
    ) -> TilingVector | None:
        """The cached tiling, or None on miss *or any invalid entry*."""
        key = self.entry_key(spec, dsp_budget, bram_budget_bytes,
                             spatial_strategy)
        try:
            raw = self._path(key).read_bytes()
            fields = json.loads(raw)["tiling"]
            return TilingVector(
                tm=fields["tm"], tn=fields["tn"],
                tr=fields["tr"], tc=fields["tc"],
            )
        except (OSError, ValueError, KeyError, TypeError):
            # Missing, torn, truncated, or corrupt: a silent miss.
            return None

    def put(
        self,
        spec: ConvLayerSpec,
        dsp_budget: int,
        bram_budget_bytes: int,
        spatial_strategy: str,
        tiling: TilingVector,
    ) -> None:
        """Write-through one tiling (atomic rename; errors swallowed)."""
        key = self.entry_key(spec, dsp_budget, bram_budget_bytes,
                             spatial_strategy)
        payload = json.dumps(
            {"tiling": {"tm": tiling.tm, "tn": tiling.tn,
                        "tr": tiling.tr, "tc": tiling.tc}},
            sort_keys=True,
        )
        path = self._path(key)
        tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
        try:
            tmp.write_text(payload, encoding="utf-8")
            os.replace(tmp, path)
        except OSError:
            try:
                tmp.unlink(missing_ok=True)
            except OSError:
                pass


#: The process-wide disk tier every :class:`LayerDesignMemo` consults,
#: or None when no cache directory has been configured.
_DISK_CACHE: TilingDiskCache | None = None


def configure_disk_cache(directory: str | None) -> None:
    """Point (or unpoint, with None) the disk tier at ``directory``.

    Process-wide by design: a worker serves many estimators over its
    lifetime and all of them should share the one on-disk tier.  Pool
    workers call this once per task from the directory the dispatcher
    hands them (``<result-store>/tiling``); forked children inherit
    the parent's setting until told otherwise.
    """
    global _DISK_CACHE
    _DISK_CACHE = None if directory is None else TilingDiskCache(directory)


def disk_cache() -> TilingDiskCache | None:
    """The currently configured disk tier (None when unset)."""
    return _DISK_CACHE


@dataclass
class LayerDesignMemo:
    """Shared memo of per-layer tiling decisions.

    Tiling selection is a pure function of the layer spec, the PE's
    resource budgets and the spatial strategy -- and architectures in a
    search run share most layer configurations -- so one memo shared
    across :class:`TilingDesigner` instances lets every new architecture
    reuse the tiling work done for fingerprints seen earlier.  This is
    the layer-level tier of the latency estimator's two-tier cache.

    Thread-safe: the memo is shared by every designer an estimator
    builds, and estimators are themselves shared across service and
    evaluation threads, so the dict and its counters mutate only under
    an internal lock.  Entries are values of a pure function, so a race
    on the same key stores the same tiling twice -- harmless.
    """

    stats: MemoStats = field(default_factory=MemoStats)
    kind_stats: dict[str, MemoStats] = field(default_factory=dict)
    _memo: dict[tuple, TilingVector] = field(default_factory=dict)
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    @staticmethod
    def _kind_bucket(spec: ConvLayerSpec) -> str:
        """Counter bucket for a layer: standard / pointwise / depthwise.

        Pointwise (1x1 standard) convs are counted apart from general
        standard convs so the MobileNet dw/pw path is observable in
        ``/metrics`` without inspecting tilings.
        """
        if spec.is_depthwise:
            return "depthwise"
        if spec.kernel == 1:
            return "pointwise"
        return "standard"

    def __len__(self) -> int:
        with self._lock:
            return len(self._memo)

    def clear(self) -> None:
        """Drop all memoised tilings (counters are kept)."""
        with self._lock:
            self._memo.clear()

    def lookup(
        self,
        spec: ConvLayerSpec,
        dsp_budget: int,
        bram_budget_bytes: int,
        spatial_strategy: str,
    ) -> TilingVector | None:
        """Return the memoised tiling for this layer shape, if any.

        Two tiers: the in-process dict first, then the shared on-disk
        cache when one is configured (see :func:`configure_disk_cache`).
        A disk hit is promoted into the memory tier, so each shape pays
        disk I/O at most once per process.
        """
        key = (spec, dsp_budget, bram_budget_bytes, spatial_strategy)
        bucket = self._kind_bucket(spec)
        with self._lock:
            tiling = self._memo.get(key)
            kind = self.kind_stats.setdefault(bucket, MemoStats())
            if tiling is None:
                self.stats.misses += 1
                kind.misses += 1
            else:
                self.stats.hits += 1
                kind.hits += 1
        _bump_process_stats(bucket, hit=tiling is not None)
        if tiling is None and _DISK_CACHE is not None:
            tiling = _DISK_CACHE.get(spec, dsp_budget, bram_budget_bytes,
                                     spatial_strategy)
            _bump_disk_stats(hit=tiling is not None)
            if tiling is not None:
                with self._lock:
                    self._memo[key] = tiling
        return tiling

    def store(
        self,
        spec: ConvLayerSpec,
        dsp_budget: int,
        bram_budget_bytes: int,
        spatial_strategy: str,
        tiling: TilingVector,
    ) -> None:
        """Memoise a freshly computed tiling (write-through to disk)."""
        key = (spec, dsp_budget, bram_budget_bytes, spatial_strategy)
        with self._lock:
            self._memo[key] = tiling
        if _DISK_CACHE is not None:
            _DISK_CACHE.put(spec, dsp_budget, bram_budget_bytes,
                            spatial_strategy, tiling)


class TilingDesigner:
    """Selects ``<Tm, Tn, Tr, Tc>`` per layer (the FNAS-Design component).

    Parameters:
        spatial_strategy: ``"max-reuse"`` picks the largest BRAM-fitting
            spatial tile (paper default); ``"min-start"`` picks the
            smallest useful tile, which shortens downstream start times
            at the cost of more ceil waste.  Both are exact w.r.t. the
            constraints; the latency analyzer arbitrates between them in
            :class:`~repro.latency.explorer.DesignExplorer`.
        memo: optional :class:`LayerDesignMemo` shared with other
            designers; repeated layer shapes then skip the tiling search.
    """

    def __init__(
        self,
        spatial_strategy: str = "max-reuse",
        memo: LayerDesignMemo | None = None,
    ):
        if spatial_strategy not in ("max-reuse", "min-start"):
            raise ValueError(
                f"unknown spatial_strategy {spatial_strategy!r}; expected "
                "'max-reuse' or 'min-start'"
            )
        self.spatial_strategy = spatial_strategy
        self.memo = memo

    def design(
        self, architecture: Architecture, platform: Platform
    ) -> PipelineDesign:
        """Produce a full pipeline design for ``architecture`` on ``platform``."""
        allocations = platform.allocate(architecture)
        layer_designs = []
        for allocation, spec in zip(allocations, architecture.layers):
            tiling = self.design_layer(spec, allocation.dsp_budget,
                                       allocation.bram_budget_bytes)
            design = LayerDesign(
                layer_index=allocation.layer_index,
                spec=spec,
                tiling=tiling,
            )
            phases = self._phase_latency(design, allocation.device)
            if phases is not None:
                design = LayerDesign(
                    layer_index=design.layer_index,
                    spec=spec,
                    tiling=tiling,
                    phases=phases,
                )
            layer_designs.append(design)
        return PipelineDesign(
            architecture=architecture,
            platform=platform,
            layers=tuple(layer_designs),
            allocations=tuple(allocations),
        )

    @staticmethod
    def _phase_latency(design: LayerDesign, device) -> PhaseLatency | None:
        """Per-task load/compute/write phases on a DRAM-modeled device.

        ``None`` (the flat-bandwidth seed behavior) when the device has
        no :class:`~repro.fpga.dram.DramModel` attached.  The load phase
        streams one task's IFM window and weight block; the write phase
        drains its OFM tile; both are rescaled to accelerator-clock
        cycles by the DRAM model.
        """
        dram = getattr(device, "dram", None)
        if dram is None:
            return None
        clock = device.clock_mhz
        load_bytes = design.ifm_buffer_bytes + design.weight_buffer_bytes
        return PhaseLatency(
            load_cycles=dram.transfer_cycles(load_bytes, clock),
            compute_cycles=design.execution_time,
            write_cycles=dram.transfer_cycles(design.ofm_buffer_bytes, clock),
        )

    def design_layer(
        self, spec: ConvLayerSpec, dsp_budget: int, bram_budget_bytes: int
    ) -> TilingVector:
        """Choose one layer's tiling under its PE's resource budget."""
        if self.memo is not None:
            cached = self.memo.lookup(
                spec, dsp_budget, bram_budget_bytes, self.spatial_strategy
            )
            if cached is not None:
                return cached
        tm, tn = self._choose_channel_tiling(spec, dsp_budget, bram_budget_bytes)
        tr, tc = self._choose_spatial_tiling(spec, tm, tn, bram_budget_bytes)
        tiling = TilingVector(tm=tm, tn=tn, tr=tr, tc=tc)
        if self.memo is not None:
            self.memo.store(
                spec, dsp_budget, bram_budget_bytes, self.spatial_strategy, tiling
            )
        return tiling

    def _choose_channel_tiling(
        self, spec: ConvLayerSpec, dsp_budget: int, bram_budget_bytes: int
    ) -> tuple[int, int]:
        """Minimise ``ceil(M/Tm) * ceil(N/Tn)`` under DSP *and* BRAM limits.

        The layer's cycle count is proportional to the channel-tile
        product, so that is the primary objective.  A candidate is only
        feasible if its buffers fit BRAM at the smallest spatial tile
        (1x1) -- the weight buffer ``Tm*Tn*K*K`` alone can dominate for
        large kernels.  Ties prefer fewer DSPs, then a larger ``Tm``
        (OFM parallelism keeps partial sums local, reducing output
        traffic).
        """
        if dsp_budget < 1:
            raise ValueError(f"dsp_budget must be >= 1, got {dsp_budget}")
        if spec.is_depthwise:
            return self._choose_depthwise_channel_tiling(
                spec, dsp_budget, bram_budget_bytes
            )
        m, n = spec.out_channels, spec.in_channels
        best: tuple[int, int, int, int] | None = None  # (waste, dsps, -tm, tm)
        best_tn = 1
        for tm in range(1, min(m, dsp_budget) + 1):
            tn = min(n, dsp_budget // tm)
            while tn >= 1 and self._bram_usage(
                spec, tm, tn, 1, 1
            ) > bram_budget_bytes:
                tn -= 1
            if tn < 1:
                continue
            tiles = (-(-m // tm)) * (-(-n // tn))
            key = (tiles, tm * tn, -tm, tm)
            if best is None or key < (best[0], best[1], best[2], best[3]):
                best = key
                best_tn = tn
        if best is None:
            raise ValueError(
                f"no channel tiling fits BRAM budget {bram_budget_bytes}B for "
                f"layer {spec.kernel}x{spec.kernel}/{spec.out_channels} "
                "(even Tm=Tn=1 overflows)"
            )
        return best[3], best_tn

    def _choose_depthwise_channel_tiling(
        self, spec: ConvLayerSpec, dsp_budget: int, bram_budget_bytes: int
    ) -> tuple[int, int]:
        """Depthwise channel tiling: one tied ``Tm == Tn == T`` knob.

        There is no channel reduction, so a depthwise PE is ``T``
        independent single-channel lanes costing ``T`` DSPs (not
        ``T x T``).  Minimise ``ceil(C / T)`` channel tiles under the
        DSP and (1x1-spatial) BRAM limits; ties prefer fewer lanes.
        """
        c = spec.in_channels
        best: tuple[int, int] | None = None  # (tiles, t)
        for t in range(1, min(c, dsp_budget) + 1):
            if self._bram_usage(spec, t, t, 1, 1) > bram_budget_bytes:
                break
            tiles = -(-c // t)
            key = (tiles, t)
            if best is None or key < best:
                best = key
        if best is None:
            raise ValueError(
                f"no channel tiling fits BRAM budget {bram_budget_bytes}B for "
                f"depthwise layer {spec.kernel}x{spec.kernel}/"
                f"{spec.out_channels} (even T=1 overflows)"
            )
        return best[1], best[1]

    def _choose_spatial_tiling(
        self, spec: ConvLayerSpec, tm: int, tn: int, bram_budget_bytes: int
    ) -> tuple[int, int]:
        """Choose ``Tr, Tc`` under the BRAM budget.

        Candidates are all (Tr, Tc) pairs over the divisor-friendly
        values of R and C; feasibility is checked with the exact buffer
        model of :class:`LayerDesign`.  Falls back to 1x1 tiles, which
        always fit a sane budget.
        """
        r, c = spec.out_rows, spec.out_cols
        candidates_r = _tile_size_candidates(r)
        candidates_c = _tile_size_candidates(c)
        feasible: list[tuple[int, int]] = []
        for tr in candidates_r:
            for tc in candidates_c:
                if self._bram_usage(spec, tm, tn, tr, tc) <= bram_budget_bytes:
                    feasible.append((tr, tc))
        if not feasible:
            raise ValueError(
                f"no spatial tiling fits BRAM budget {bram_budget_bytes}B for "
                f"layer {spec.kernel}x{spec.kernel}/{spec.out_channels} "
                f"(even 1x1 tiles overflow)"
            )
        if self.spatial_strategy == "max-reuse":
            # Largest area; ties prefer fewer total tiles (less ceil waste),
            # then squarer tiles.
            def score(rc: tuple[int, int]) -> tuple[int, int, int]:
                tr, tc = rc
                tiles = (-(-r // tr)) * (-(-c // tc))
                return (-(tr * tc), tiles, abs(tr - tc))
        else:  # min-start
            # Smallest tile that still divides the map without extra waste.
            def score(rc: tuple[int, int]) -> tuple[int, int, int]:
                tr, tc = rc
                tiles = (-(-r // tr)) * (-(-c // tc))
                waste = tiles * tr * tc - r * c
                return (waste, tr * tc, abs(tr - tc))
        return min(feasible, key=score)

    @staticmethod
    def _bram_usage(
        spec: ConvLayerSpec, tm: int, tn: int, tr: int, tc: int
    ) -> int:
        """Double-buffered bytes for a candidate tiling (mirrors LayerDesign)."""
        window_rows = tr * spec.stride + spec.kernel - 1
        window_cols = tc * spec.stride + spec.kernel - 1
        ifm = tn * window_rows * window_cols * WORD_BYTES
        ofm = tm * tr * tc * WORD_BYTES
        if spec.is_depthwise:
            wei = tn * spec.kernel * spec.kernel * WORD_BYTES
        else:
            wei = tm * tn * spec.kernel * spec.kernel * WORD_BYTES
        return DOUBLE_BUFFER * (ifm + ofm + wei)


def _tile_size_candidates(extent: int) -> list[int]:
    """Useful tile sizes for a spatial extent: divisors plus the extent itself.

    Divisors avoid ragged edge tiles; a handful of near-divisor sizes are
    added for prime extents so the search is never starved of choices.
    """
    if extent <= 0:
        raise ValueError(f"extent must be positive, got {extent}")
    sizes = {d for d in range(1, extent + 1) if extent % d == 0}
    # Ensure some mid-range options exist even when extent is prime.
    for frac in (2, 3, 4):
        sizes.add(max(1, -(-extent // frac)))
    return sorted(sizes)
