"""String-keyed component registries: the substrate of declarative plans.

A :class:`~repro.plans.RunPlan` is pure data -- the components it names
(controller, evaluator, estimator, device) are string keys that resolve
through the registries below.  That indirection is what makes plans
serializable, shippable across processes, and extensible: third-party
code registers a component under a new key and every plan field, CLI
flag and shard spec naming that kind of component can use it
immediately, with no signature widened anywhere.  (Plan *dataset*
fields are the exception: they name Table 2 search-space configs from
:mod:`repro.configs`; the ``DATASETS`` registry below serves the data
generators behind ``load_dataset`` and the ``trained`` evaluator.)

Built-in components register themselves from their defining modules via
the decorator form::

    from repro.registry import CONTROLLERS

    @CONTROLLERS.register("my-controller")
    def _build(space, seed):
        return MyController(space, seed=seed)

Each registry lazily imports its built-in modules on first lookup, so
``CONTROLLERS["lstm"]`` works without the caller importing
``repro.core.controller`` first, and importing :mod:`repro.registry`
itself stays dependency-free (it is a leaf module).

Factory contracts (what a registered callable receives):

==============  ========================================================
Registry        Factory signature
==============  ========================================================
``CONTROLLERS`` ``factory(space, seed) -> Controller``
``EVALUATORS``  ``factory(space, config, seed) -> AccuracyEvaluator``
``ESTIMATORS``  ``factory(platform) -> LatencyEstimator``
``DATASETS``    ``factory(train_size=..., val_size=..., seed=...) -> Dataset``
``DEVICES``     registered *values* are :class:`~repro.fpga.device.FpgaDevice`
                instances, not factories
==============  ========================================================
"""

from __future__ import annotations

import difflib
import importlib
from collections.abc import Mapping
from typing import Any, Callable, Iterator


class Registry(Mapping):
    """A named string -> component mapping with decorator registration.

    Behaves as a read-only :class:`~collections.abc.Mapping` (so
    membership tests, iteration and ``sorted(registry)`` all work) and
    raises a :class:`KeyError` that lists the known keys on a miss.

    Parameters:
        kind: human-readable component kind, used in error messages
            (``"controller"``, ``"FPGA device"``, ...).
        builtin_modules: dotted module paths imported lazily before the
            first lookup; those modules register the built-in entries
            as an import side effect.
    """

    def __init__(self, kind: str, builtin_modules: tuple[str, ...] = ()):
        self._kind = kind
        self._builtin_modules = tuple(builtin_modules)
        self._entries: dict[str, Any] = {}
        self._loaded = False

    @property
    def kind(self) -> str:
        """The component kind this registry holds."""
        return self._kind

    def register(
        self, name: str, component: Any = None, replace: bool = False
    ) -> Any:
        """Register ``component`` under ``name``.

        Usable directly (``DEVICES.register("pynq-z1", PYNQ_Z1)``) or as
        a decorator (``@CONTROLLERS.register("lstm")``).  Registering a
        different component under an existing name raises unless
        ``replace=True``; re-registering the identical object is a
        no-op, so module re-imports are harmless.
        """
        if not name or not isinstance(name, str):
            raise ValueError(f"{self._kind} names must be non-empty strings, "
                             f"got {name!r}")
        if component is None:
            def decorator(target: Callable) -> Callable:
                self.register(name, target, replace=replace)
                return target
            return decorator
        existing = self._entries.get(name)
        if existing is not None and existing is not component and not replace:
            raise ValueError(
                f"a different {self._kind} is already registered as "
                f"{name!r}; pass replace=True to override"
            )
        self._entries[name] = component
        return component

    def unregister(self, name: str) -> None:
        """Remove ``name`` (mainly for tests of third-party registration)."""
        self._ensure_loaded()
        if name not in self._entries:
            raise KeyError(self._miss_message(name))
        del self._entries[name]

    def names(self) -> list[str]:
        """Sorted registered names (built-ins included)."""
        self._ensure_loaded()
        return sorted(self._entries)

    # -- Mapping protocol ----------------------------------------------------

    def __getitem__(self, name: str) -> Any:
        """Look up a component, raising a listing ``KeyError`` on a miss."""
        self._ensure_loaded()
        try:
            return self._entries[name]
        except KeyError:
            raise KeyError(self._miss_message(name)) from None

    def __iter__(self) -> Iterator[str]:
        """Iterate registered names."""
        self._ensure_loaded()
        return iter(self._entries)

    def __len__(self) -> int:
        """Number of registered components."""
        self._ensure_loaded()
        return len(self._entries)

    def __repr__(self) -> str:
        """``Registry(kind, N entries)`` -- loads built-ins first."""
        return f"Registry({self._kind!r}, {len(self)} entries)"

    # -- internals -----------------------------------------------------------

    def _ensure_loaded(self) -> None:
        if self._loaded:
            return
        # Mark loaded before importing: a built-in module may consult
        # the registry while it is being imported.
        self._loaded = True
        for module in self._builtin_modules:
            importlib.import_module(module)

    def _miss_message(self, name: str) -> str:
        names = self.names()
        known = ", ".join(names)
        hint = ""
        if isinstance(name, str):
            close = difflib.get_close_matches(name, names, n=1)
            if close:
                hint = f" (did you mean {close[0]!r}?)"
        return f"unknown {self._kind} {name!r}{hint}; known: {known}"


#: Controller factories: ``factory(space, seed) -> Controller``.
CONTROLLERS = Registry("controller", ("repro.core.controller",))

#: Evaluator factories: ``factory(space, config, seed) -> AccuracyEvaluator``.
EVALUATORS = Registry("evaluator", ("repro.core.evaluator",))

#: Estimator factories: ``factory(platform) -> LatencyEstimator``.
ESTIMATORS = Registry("latency estimator", ("repro.latency.estimator",))

#: Dataset generators: ``factory(train_size, val_size, seed) -> Dataset``.
DATASETS = Registry(
    "dataset",
    (
        "repro.datasets.synthetic_mnist",
        "repro.datasets.synthetic_cifar",
        "repro.datasets.synthetic_imagenet",
        "repro.datasets.synthetic_mobilenet",
    ),
)

#: FPGA devices: registered values are ``FpgaDevice`` instances.
DEVICES = Registry("FPGA device", ("repro.fpga.device",))
