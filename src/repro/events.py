"""Typed progress events and the bus that carries them.

Every layer that reports progress -- :class:`repro.api.Session`, the
:class:`~repro.orchestration.campaign.Campaign` runner and the
:class:`~repro.service.SearchService` -- speaks the same vocabulary:
frozen :class:`Event` dataclasses published through an
:class:`EventBus`.  One vocabulary means one contract: the same
single-search plan produces the same typed event sequence whichever
surface executes it (pinned by the golden event-stream tests).

Events are plain data.  Each carries a ``scope`` (the workload, search,
shard or job it belongs to) and a human-readable ``message``; job
events add the job's plan hash.  :meth:`Event.to_dict` /
:func:`event_from_dict` round-trip every event losslessly through JSON,
which is how the service's HTTP endpoint streams them.

Consumption comes in two shapes:

* **sync subscription** -- ``bus.subscribe(callback)`` delivers every
  published event to the callback, in publish order, on the publishing
  thread;
* **async iteration** -- ``async for event in bus.stream(): ...``
  bridges the bus into asyncio without any third-party dependency
  (each stream buffers internally; closing the stream or the bus ends
  the iteration).

The bus is thread-safe: the service's worker threads publish
concurrently and delivery order within the bus is serialized.
"""

from __future__ import annotations

import dataclasses
import json
import queue
import threading
from dataclasses import dataclass
from typing import Any, Callable, ClassVar, Iterator

#: Registry of event type tags -> event classes (see :func:`event_from_dict`).
EVENT_TYPES: dict[str, type["Event"]] = {}


def register_event(cls: type["Event"]) -> type["Event"]:
    """Class decorator adding an event type to :data:`EVENT_TYPES`."""
    EVENT_TYPES[cls.type_tag] = cls
    return cls


@dataclass(frozen=True)
class Event:
    """Base progress event: a kind, a scope and a message.

    ``kind`` is a class-level discriminator kept for backward
    compatibility with the string-kind era (``"start"``, ``"finish"``,
    ``"requeue"``, ...); ``type_tag`` names the concrete class in
    serialized form.  ``scope`` names what the event is about -- a
    workload, a search/shard id, or a job id -- and is also exposed as
    :attr:`shard_id` for campaign-era callers.
    """

    scope: str = ""
    message: str = ""

    #: String kind, the pre-typed-events discriminator.
    kind: ClassVar[str] = "event"
    #: Serialization tag identifying the concrete class.
    type_tag: ClassVar[str] = "event"

    @property
    def shard_id(self) -> str:
        """Campaign-era alias for :attr:`scope`."""
        return self.scope

    def to_dict(self) -> dict[str, Any]:
        """Lossless plain-dict form (JSON-compatible).

        The ``event`` key carries the class tag so
        :func:`event_from_dict` rebuilds the exact type; ``kind`` is
        included for consumers that only dispatch on the string kind.
        """
        data: dict[str, Any] = {"event": self.type_tag, "kind": self.kind}
        for field in dataclasses.fields(self):
            data[field.name] = getattr(self, field.name)
        return data


register_event(Event)


def event_from_dict(data: dict[str, Any]) -> Event:
    """Rebuild a typed event from :meth:`Event.to_dict` output."""
    data = dict(data)
    tag = data.pop("event", "event")
    data.pop("kind", None)
    cls = EVENT_TYPES.get(tag)
    if cls is None:
        raise ValueError(
            f"unknown event type {tag!r}; known: "
            + ", ".join(sorted(EVENT_TYPES))
        )
    return cls(**data)


def event_to_json(event: Event) -> str:
    """One-line JSON form of an event (the pipe/journal wire codec).

    Newline-free by construction (``json.dumps`` escapes embedded
    newlines), so events can be framed one per line across a process
    pipe or appended to a JSONL journal.  Exactly the
    :meth:`Event.to_dict` document -- the same shape the HTTP
    ``/events`` endpoint serves -- so anything crossing a process
    boundary is by construction limited to the JSON-codec-representable
    event vocabulary.
    """
    return json.dumps(event.to_dict(), sort_keys=True)


def event_from_json(text: str) -> Event:
    """Inverse of :func:`event_to_json`."""
    return event_from_dict(json.loads(text))


# --- run / search / campaign events ----------------------------------------


@register_event
@dataclass(frozen=True)
class RunStarted(Event):
    """A workload run began; ``scope`` is the workload name."""

    kind: ClassVar[str] = "start"
    type_tag: ClassVar[str] = "run-started"


@register_event
@dataclass(frozen=True)
class RunFinished(Event):
    """A workload run completed; ``scope`` is the workload name."""

    kind: ClassVar[str] = "finish"
    type_tag: ClassVar[str] = "run-finished"


@register_event
@dataclass(frozen=True)
class SearchStarted(Event):
    """A search / shard / phase began; ``scope`` names it."""

    kind: ClassVar[str] = "start"
    type_tag: ClassVar[str] = "search-started"


@register_event
@dataclass(frozen=True)
class SearchFinished(Event):
    """A search / shard / phase completed; ``scope`` names it."""

    kind: ClassVar[str] = "finish"
    type_tag: ClassVar[str] = "search-finished"


@register_event
@dataclass(frozen=True)
class ShardRequeued(Event):
    """A campaign shard was re-queued after a worker death."""

    kind: ClassVar[str] = "requeue"
    type_tag: ClassVar[str] = "shard-requeued"


@register_event
@dataclass(frozen=True)
class PoolFallback(Event):
    """A campaign exhausted its pool-restart budget; going in-process."""

    kind: ClassVar[str] = "fallback"
    type_tag: ClassVar[str] = "pool-fallback"


@register_event
@dataclass(frozen=True)
class ShardCached(Event):
    """A campaign shard was served from the result store, not executed.

    The shard-granular sibling of the service-level
    :class:`CacheHit`: ``scope`` is the shard id and ``plan_hash`` the
    shard's canonical single-search plan hash
    (:attr:`repro.orchestration.shards.ShardSpec.shard_hash`).  Tests
    and benches count these to assert how much of a sweep was memoized.
    """

    plan_hash: str = ""

    kind: ClassVar[str] = "cache-hit"
    type_tag: ClassVar[str] = "shard-cached"


#: Map from string kinds to the search/campaign event classes -- the
#: adapter between ``emit(kind, scope, message)`` call sites and typed
#: events (:func:`legacy_event`).
_KIND_TO_CLASS: dict[str, type[Event]] = {
    "start": SearchStarted,
    "finish": SearchFinished,
    "requeue": ShardRequeued,
    "fallback": PoolFallback,
}


def legacy_event(kind: str, scope: str, message: str) -> Event:
    """Typed event for an ``emit(kind, scope, message)``-era call.

    Unrecognised kinds fall back to the base :class:`Event` so old
    emitters keep working; the four campaign kinds map onto their
    typed classes.
    """
    cls = _KIND_TO_CLASS.get(kind)
    if cls is None:
        return Event(scope=scope, message=message)
    return cls(scope=scope, message=message)


# --- service job events -----------------------------------------------------


@dataclass(frozen=True)
class JobEvent(Event):
    """Base class of service job lifecycle events.

    ``scope`` is the job id; ``plan_hash`` the job's canonical
    :func:`repro.plans.plan_hash`.
    """

    plan_hash: str = ""

    type_tag: ClassVar[str] = "job-event"


@register_event
@dataclass(frozen=True)
class JobQueued(JobEvent):
    """A job entered the service queue."""

    kind: ClassVar[str] = "queued"
    type_tag: ClassVar[str] = "job-queued"


@register_event
@dataclass(frozen=True)
class JobStarted(JobEvent):
    """A worker picked the job up and began executing it."""

    kind: ClassVar[str] = "running"
    type_tag: ClassVar[str] = "job-started"


@register_event
@dataclass(frozen=True)
class JobCompleted(JobEvent):
    """The job finished successfully; its result is available."""

    kind: ClassVar[str] = "done"
    type_tag: ClassVar[str] = "job-completed"


@register_event
@dataclass(frozen=True)
class JobCancelled(JobEvent):
    """The job was cancelled (checkpointed state, if any, survives)."""

    kind: ClassVar[str] = "cancelled"
    type_tag: ClassVar[str] = "job-cancelled"


@register_event
@dataclass(frozen=True)
class JobFailed(JobEvent):
    """The job raised; ``message`` carries the error."""

    kind: ClassVar[str] = "failed"
    type_tag: ClassVar[str] = "job-failed"


@register_event
@dataclass(frozen=True)
class CacheHit(JobEvent):
    """A submitted plan matched a stored result; nothing re-ran."""

    kind: ClassVar[str] = "cache-hit"
    type_tag: ClassVar[str] = "cache-hit"


# --- federation (agent / lease) events --------------------------------------


@register_event
@dataclass(frozen=True)
class AgentJoined(Event):
    """A worker agent registered with the coordinator.

    ``scope`` is the agent id; ``name`` the agent's self-reported
    (human-friendly) name.
    """

    name: str = ""

    kind: ClassVar[str] = "agent-joined"
    type_tag: ClassVar[str] = "agent-joined"


@register_event
@dataclass(frozen=True)
class AgentLost(Event):
    """A worker agent left, or missed enough heartbeats to be presumed
    dead; ``scope`` is the agent id."""

    name: str = ""

    kind: ClassVar[str] = "agent-lost"
    type_tag: ClassVar[str] = "agent-lost"


@register_event
@dataclass(frozen=True)
class JobLeased(JobEvent):
    """A remote agent claimed the job under a heartbeat-renewed lease.

    ``scope`` is the job id; ``agent`` the claiming agent's id;
    ``lease_seconds`` the lease term, after which a lease that was
    never renewed expires and the job re-queues.
    """

    agent: str = ""
    lease_seconds: float = 0.0

    kind: ClassVar[str] = "leased"
    type_tag: ClassVar[str] = "job-leased"


@register_event
@dataclass(frozen=True)
class LeaseExpired(JobEvent):
    """A job's lease ran out of heartbeats; the job re-queues and will
    resume elsewhere from its per-hash checkpoint.

    ``agent`` is the id of the agent that held (and lost) the lease.
    """

    agent: str = ""

    kind: ClassVar[str] = "lease-expired"
    type_tag: ClassVar[str] = "lease-expired"


# --- the bus ----------------------------------------------------------------


EventCallback = Callable[[Event], None]

#: Sentinel closing an :class:`EventStream`'s queue.
_CLOSED = object()


class EventStream:
    """One subscriber's buffered view of a bus, sync- and async-iterable.

    Created by :meth:`EventBus.stream`; usable as a context manager
    (closing unsubscribes).  Synchronous iteration blocks until the
    stream closes; asynchronous iteration (``async for``) awaits
    without blocking the event loop, via a worker thread per ``get``.
    """

    def __init__(self, bus: "EventBus"):
        self._bus = bus
        self._queue: queue.Queue = queue.Queue()
        self._closed = False

    def _deliver(self, event: Event) -> None:
        if not self._closed:
            self._queue.put(event)

    def close(self) -> None:
        """Unsubscribe from the bus and end iteration."""
        if not self._closed:
            self._closed = True
            self._bus._detach(self)
            self._queue.put(_CLOSED)

    def __enter__(self) -> "EventStream":
        """Context-manager entry: the stream itself."""
        return self

    def __exit__(self, *exc_info: object) -> None:
        """Context-manager exit closes the stream."""
        self.close()

    def __iter__(self) -> Iterator[Event]:
        """Yield events in publish order until the stream closes."""
        while True:
            item = self._queue.get()
            if item is _CLOSED:
                return
            yield item

    def __aiter__(self) -> "EventStream":
        """Asynchronous iteration protocol entry."""
        return self

    async def __anext__(self) -> Event:
        """Await the next event without blocking the event loop."""
        import asyncio

        if self._closed and self._queue.empty():
            raise StopAsyncIteration
        item = await asyncio.to_thread(self._queue.get)
        if item is _CLOSED:
            raise StopAsyncIteration
        return item


class EventBus:
    """Thread-safe publish/subscribe hub for typed events.

    Callbacks run synchronously on the publishing thread, in subscribe
    order.  Recording (when on) and the subscriber snapshot happen
    under one lock, so :attr:`history` reflects a single global order;
    delivery itself runs *outside* the lock (a callback may safely
    publish or subscribe), so two racing publishers' callbacks can
    interleave -- consumers needing strict per-job order read the
    service's per-job logs, which are appended under the service lock.
    ``record=True`` additionally appends every event to
    :attr:`history`.
    """

    def __init__(self, record: bool = False):
        self._lock = threading.Lock()
        self._subscribers: list[EventCallback] = []
        self._streams: list[EventStream] = []
        self._record = record
        #: Recorded events when ``record=True`` (publish order).
        self.history: list[Event] = []

    def subscribe(self, callback: EventCallback) -> EventCallback:
        """Register a callback; returns it (handy for unsubscribing)."""
        with self._lock:
            self._subscribers.append(callback)
        return callback

    def unsubscribe(self, callback: EventCallback) -> None:
        """Remove a previously subscribed callback."""
        with self._lock:
            self._subscribers.remove(callback)

    def stream(self) -> EventStream:
        """Open a buffered :class:`EventStream` over future events."""
        stream = EventStream(self)
        with self._lock:
            self._streams.append(stream)
        return stream

    def publish(self, event: Event) -> None:
        """Deliver one event to every subscriber and open stream."""
        with self._lock:
            if self._record:
                self.history.append(event)
            subscribers = list(self._subscribers)
            streams = list(self._streams)
        for callback in subscribers:
            callback(event)
        for stream in streams:
            stream._deliver(event)

    def close(self) -> None:
        """Close every open stream (subscribed callbacks are unaffected)."""
        with self._lock:
            streams = list(self._streams)
        for stream in streams:
            stream.close()

    # -- internals -----------------------------------------------------------

    def _detach(self, stream: EventStream) -> None:
        with self._lock:
            if stream in self._streams:
                self._streams.remove(stream)
