"""Synthetic ImageNet stand-in: many-class shape-on-texture images.

The paper uses a *reduced* ImageNet (4,500 train / 500 val images,
Table 2) to keep search time manageable.  This generator follows the
same spirit: 20 classes (more than CIFAR, fewer than the full 1000) of
32x32 RGB images where each class combines a textured background with a
class-specific geometric foreground shape (disk / ring / bar / checker
of varying size and color).  Separating the classes needs both local
texture filters and larger-scale shape integration, rewarding the
deeper, wider architectures the ImageNet search space offers
(up to 15 layers / 128 filters).
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import Dataset
from repro.registry import DATASETS
from repro.datasets.synthetic_cifar import _class_parameters, _render

IMAGE_SIZE = 32
NUM_CLASSES = 20

_SHAPES = ("disk", "ring", "hbar", "vbar", "checker")


def _draw_shape(
    image: np.ndarray, shape: str, color: np.ndarray, rng: np.random.Generator
) -> None:
    """Overlay one foreground shape onto ``image`` in place."""
    size = image.shape[1]
    ys, xs = np.mgrid[0:size, 0:size].astype(np.float32)
    cy = rng.uniform(0.3, 0.7) * size
    cx = rng.uniform(0.3, 0.7) * size
    radius = rng.uniform(0.18, 0.3) * size
    dist = np.sqrt((ys - cy) ** 2 + (xs - cx) ** 2)
    if shape == "disk":
        mask = dist <= radius
    elif shape == "ring":
        mask = (dist <= radius) & (dist >= 0.55 * radius)
    elif shape == "hbar":
        half = 0.45 * radius
        mask = (np.abs(ys - cy) <= half) & (np.abs(xs - cx) <= 2.2 * radius)
    elif shape == "vbar":
        half = 0.45 * radius
        mask = (np.abs(xs - cx) <= half) & (np.abs(ys - cy) <= 2.2 * radius)
    elif shape == "checker":
        cell = max(2, int(radius / 2))
        checker = ((ys // cell).astype(int) + (xs // cell).astype(int)) % 2 == 0
        mask = (dist <= 1.3 * radius) & checker
    else:
        raise ValueError(f"unknown shape {shape!r}")
    for ch in range(3):
        image[ch][mask] = 0.65 * color[ch] + 0.35 * image[ch][mask]


@DATASETS.register("imagenet")
def make_imagenet(
    train_size: int = 2000, val_size: int = 500, seed: int = 0
) -> Dataset:
    """Build the synthetic reduced-ImageNet dataset (32x32x3, 20 classes).

    Paper-scale splits are 4,500 / 500 (Table 2) -- small enough that the
    defaults here are already close to paper scale.
    """
    if train_size <= 0 or val_size <= 0:
        raise ValueError("split sizes must be positive")
    rng = np.random.default_rng(seed + 1000)
    texture_params = _class_parameters(NUM_CLASSES, rng)
    shape_colors = rng.uniform(0.2, 1.0, size=(NUM_CLASSES, 3))

    def generate(count: int) -> tuple[np.ndarray, np.ndarray]:
        labels = rng.integers(0, NUM_CLASSES, size=count)
        images = np.empty((count, 3, IMAGE_SIZE, IMAGE_SIZE), dtype=np.float32)
        for i, label in enumerate(labels):
            label = int(label)
            image = _render(texture_params[label], rng, IMAGE_SIZE)
            _draw_shape(
                image,
                _SHAPES[label % len(_SHAPES)],
                shape_colors[label],
                rng,
            )
            images[i] = np.clip(image, 0.0, 1.0)
        return images, labels.astype(np.int64)

    train_x, train_y = generate(train_size)
    val_x, val_y = generate(val_size)
    return Dataset(
        name="synthetic-imagenet",
        train_x=train_x,
        train_y=train_y,
        val_x=val_x,
        val_y=val_y,
        num_classes=NUM_CLASSES,
    )
