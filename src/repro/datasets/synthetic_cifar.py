"""Synthetic CIFAR-10: class-conditional colored textures.

Each class is a fixed (per seed) combination of a sinusoidal grating
orientation/frequency and an RGB color palette; samples add random
phase, per-image contrast and noise.  A convolutional network must learn
oriented-frequency filters and color statistics to separate the classes,
which is the same *kind* of discrimination real CIFAR requires, at a
difficulty small NumPy-trained CNNs can make visible progress on.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import Dataset
from repro.registry import DATASETS

IMAGE_SIZE = 32
NUM_CLASSES = 10


def _class_parameters(
    num_classes: int, rng: np.random.Generator
) -> list[dict]:
    """Fixed texture parameters per class."""
    params = []
    for c in range(num_classes):
        params.append(
            {
                "theta": np.pi * c / num_classes + rng.uniform(-0.1, 0.1),
                "freq": 0.25 + 0.9 * rng.uniform() + 0.15 * c / num_classes,
                "color": rng.uniform(0.2, 0.9, size=3),
                "secondary": rng.uniform(0.1, 0.6, size=3),
            }
        )
    return params


def _render(params: dict, rng: np.random.Generator, size: int) -> np.ndarray:
    """One (3, size, size) texture sample for a class."""
    ys, xs = np.mgrid[0:size, 0:size].astype(np.float32)
    theta = params["theta"] + rng.normal(0.0, 0.05)
    freq = params["freq"] * rng.uniform(0.9, 1.1)
    phase = rng.uniform(0.0, 2.0 * np.pi)
    wave = np.sin(freq * (np.cos(theta) * xs + np.sin(theta) * ys) + phase)
    wave = 0.5 * (wave + 1.0)  # -> [0, 1]
    contrast = rng.uniform(0.6, 1.0)
    image = np.empty((3, size, size), dtype=np.float32)
    for ch in range(3):
        base = params["color"][ch] * wave + params["secondary"][ch] * (1 - wave)
        image[ch] = contrast * base
    image += rng.normal(0.0, 0.06, size=image.shape).astype(np.float32)
    return np.clip(image, 0.0, 1.0)


def _generate(
    count: int,
    params: list[dict],
    rng: np.random.Generator,
    size: int,
) -> tuple[np.ndarray, np.ndarray]:
    """``count`` labelled texture images."""
    num_classes = len(params)
    labels = rng.integers(0, num_classes, size=count)
    images = np.empty((count, 3, size, size), dtype=np.float32)
    for i, label in enumerate(labels):
        images[i] = _render(params[int(label)], rng, size)
    return images, labels.astype(np.int64)


@DATASETS.register("cifar10")
def make_cifar(
    train_size: int = 2000, val_size: int = 500, seed: int = 0
) -> Dataset:
    """Build a synthetic CIFAR-10-like dataset (32x32x3, 10 classes).

    Paper-scale splits are 45,000 / 5,000 (Table 2).
    """
    if train_size <= 0 or val_size <= 0:
        raise ValueError("split sizes must be positive")
    rng = np.random.default_rng(seed)
    params = _class_parameters(NUM_CLASSES, rng)
    train_x, train_y = _generate(train_size, params, rng, IMAGE_SIZE)
    val_x, val_y = _generate(val_size, params, rng, IMAGE_SIZE)
    return Dataset(
        name="synthetic-cifar10",
        train_x=train_x,
        train_y=train_y,
        val_x=val_x,
        val_y=val_y,
        num_classes=NUM_CLASSES,
    )
