"""Synthetic dataset generators (MNIST / CIFAR-10 / ImageNet / MobileNet
stand-ins)."""

from repro.datasets.base import Dataset
from repro.datasets.registry import dataset_names, load_dataset
from repro.datasets.synthetic_cifar import make_cifar
from repro.datasets.synthetic_imagenet import make_imagenet
from repro.datasets.synthetic_mnist import make_mnist
from repro.datasets.synthetic_mobilenet import make_mobilenet

__all__ = [
    "Dataset",
    "dataset_names",
    "load_dataset",
    "make_cifar",
    "make_imagenet",
    "make_mnist",
    "make_mobilenet",
]
