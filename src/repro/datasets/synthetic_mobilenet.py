"""Synthetic dataset behind the MobileNet-class search space.

The ``mobilenet`` config (:data:`repro.configs.MOBILENET_CONFIG`) is an
extension space, not a Table 2 row, so there is no paper dataset to
mimic; what the space needs is a 32x32 RGB, 10-class workload whose
classes reward both local texture filters (cheap separable layers) and
cross-channel mixing (standard layers).  The CIFAR generator's textured
parametric classes already have that property, so this module reuses its
renderer with an independent class-parameter draw -- the two datasets
share *style*, not images or labels.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import Dataset
from repro.datasets.synthetic_cifar import _class_parameters, _render
from repro.registry import DATASETS

IMAGE_SIZE = 32
NUM_CLASSES = 10


@DATASETS.register("mobilenet")
def make_mobilenet(
    train_size: int = 2000, val_size: int = 500, seed: int = 0
) -> Dataset:
    """Build the synthetic MobileNet-space dataset (32x32x3, 10 classes)."""
    if train_size <= 0 or val_size <= 0:
        raise ValueError("split sizes must be positive")
    # Offset the seed stream so the class palette differs from CIFAR's
    # even when callers pass the same seed.
    rng = np.random.default_rng(seed + 2000)
    params = _class_parameters(NUM_CLASSES, rng)

    def generate(count: int) -> tuple[np.ndarray, np.ndarray]:
        labels = rng.integers(0, NUM_CLASSES, size=count)
        images = np.empty((count, 3, IMAGE_SIZE, IMAGE_SIZE), dtype=np.float32)
        for i, label in enumerate(labels):
            images[i] = np.clip(
                _render(params[int(label)], rng, IMAGE_SIZE), 0.0, 1.0
            )
        return images, labels.astype(np.int64)

    train_x, train_y = generate(train_size)
    val_x, val_y = generate(val_size)
    return Dataset(
        name="synthetic-mobilenet",
        train_x=train_x,
        train_y=train_y,
        val_x=val_x,
        val_y=val_y,
        num_classes=NUM_CLASSES,
    )
