"""Dataset registry: name -> generator.

Since the RunPlan redesign the authoritative mapping is
:data:`repro.registry.DATASETS`; the generators register themselves
there from their defining modules.  This module keeps the historical
``load_dataset`` / ``dataset_names`` entry points as thin views over
that registry, so third-party datasets registered via
``DATASETS.register("name")`` are served here too.
"""

from __future__ import annotations

from repro.datasets.base import Dataset
from repro.registry import DATASETS


def dataset_names() -> list[str]:
    """Registered dataset names."""
    return DATASETS.names()


def load_dataset(
    name: str, train_size: int = 2000, val_size: int = 500, seed: int = 0
) -> Dataset:
    """Generate a dataset by name.

    ``name`` is one of :func:`dataset_names`.  Sizes default to a
    laptop-friendly scale; pass the Table 2 sizes (see
    ``repro.experiments.configs``) for paper-scale runs.
    """
    generator = DATASETS[name]
    return generator(train_size=train_size, val_size=val_size, seed=seed)
