"""Dataset registry: name -> generator."""

from __future__ import annotations

from typing import Callable

from repro.datasets.base import Dataset
from repro.datasets.synthetic_cifar import make_cifar
from repro.datasets.synthetic_imagenet import make_imagenet
from repro.datasets.synthetic_mnist import make_mnist

_GENERATORS: dict[str, Callable[..., Dataset]] = {
    "mnist": make_mnist,
    "cifar10": make_cifar,
    "imagenet": make_imagenet,
}


def dataset_names() -> list[str]:
    """Registered dataset names."""
    return sorted(_GENERATORS)


def load_dataset(
    name: str, train_size: int = 2000, val_size: int = 500, seed: int = 0
) -> Dataset:
    """Generate a dataset by name.

    ``name`` is one of :func:`dataset_names`.  Sizes default to a
    laptop-friendly scale; pass the Table 2 sizes (see
    ``repro.experiments.configs``) for paper-scale runs.
    """
    try:
        generator = _GENERATORS[name]
    except KeyError:
        known = ", ".join(dataset_names())
        raise KeyError(f"unknown dataset {name!r}; known: {known}")
    return generator(train_size=train_size, val_size=val_size, seed=seed)
