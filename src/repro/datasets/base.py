"""Dataset container shared by all synthetic generators."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class Dataset:
    """An image-classification dataset split into train and validation.

    Images are NCHW ``float32`` in ``[0, 1]``; labels are integer class
    ids.  Mirrors the paper's Table 2 structure (train set + held-out
    validation set used for the reward accuracy).
    """

    name: str
    train_x: np.ndarray
    train_y: np.ndarray
    val_x: np.ndarray
    val_y: np.ndarray
    num_classes: int

    def __post_init__(self) -> None:
        if self.train_x.ndim != 4 or self.val_x.ndim != 4:
            raise ValueError("images must be NCHW 4-D arrays")
        if self.train_x.shape[0] != self.train_y.shape[0]:
            raise ValueError("train image/label counts differ")
        if self.val_x.shape[0] != self.val_y.shape[0]:
            raise ValueError("val image/label counts differ")
        if self.train_x.shape[1:] != self.val_x.shape[1:]:
            raise ValueError("train/val image shapes differ")
        if self.num_classes < 2:
            raise ValueError(f"num_classes must be >= 2, got {self.num_classes}")
        for labels in (self.train_y, self.val_y):
            if labels.size and (labels.min() < 0 or labels.max() >= self.num_classes):
                raise ValueError("labels out of range")

    @property
    def input_channels(self) -> int:
        """Image channels (1 for MNIST-like, 3 for CIFAR-like)."""
        return self.train_x.shape[1]

    @property
    def input_size(self) -> int:
        """Image height (== width; all generators emit square images)."""
        return self.train_x.shape[2]

    @property
    def train_size(self) -> int:
        """Training example count."""
        return self.train_x.shape[0]

    @property
    def val_size(self) -> int:
        """Validation example count."""
        return self.val_x.shape[0]

    def subsample(self, train: int, val: int, seed: int = 0) -> "Dataset":
        """A smaller dataset drawn without replacement from this one."""
        if train > self.train_size or val > self.val_size:
            raise ValueError(
                f"requested {train}/{val} but have "
                f"{self.train_size}/{self.val_size}"
            )
        rng = np.random.default_rng(seed)
        t_idx = rng.choice(self.train_size, size=train, replace=False)
        v_idx = rng.choice(self.val_size, size=val, replace=False)
        return Dataset(
            name=f"{self.name}-sub{train}",
            train_x=self.train_x[t_idx],
            train_y=self.train_y[t_idx],
            val_x=self.val_x[v_idx],
            val_y=self.val_y[v_idx],
            num_classes=self.num_classes,
        )
