"""Synthetic MNIST: procedurally rendered digit images.

Real MNIST is not available offline, so this generator renders the ten
digits from a 5x7 pixel font into 28x28 grayscale images with random
scale, translation, per-stroke intensity jitter, blur and background
noise.  The result is genuinely learnable -- small CNNs reach >95%
validation accuracy, bigger ones more -- which preserves the
accuracy-vs-capacity landscape the NAS reward depends on.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import Dataset
from repro.registry import DATASETS

#: 5x7 bitmap font for digits 0-9 ('#' = stroke).
_GLYPHS = {
    0: (" ### ", "#   #", "#  ##", "# # #", "##  #", "#   #", " ### "),
    1: ("  #  ", " ##  ", "  #  ", "  #  ", "  #  ", "  #  ", " ### "),
    2: (" ### ", "#   #", "    #", "   # ", "  #  ", " #   ", "#####"),
    3: (" ### ", "#   #", "    #", "  ## ", "    #", "#   #", " ### "),
    4: ("   # ", "  ## ", " # # ", "#  # ", "#####", "   # ", "   # "),
    5: ("#####", "#    ", "#### ", "    #", "    #", "#   #", " ### "),
    6: (" ### ", "#    ", "#    ", "#### ", "#   #", "#   #", " ### "),
    7: ("#####", "    #", "   # ", "  #  ", "  #  ", " #   ", " #   "),
    8: (" ### ", "#   #", "#   #", " ### ", "#   #", "#   #", " ### "),
    9: (" ### ", "#   #", "#   #", " ####", "    #", "    #", " ### "),
}

IMAGE_SIZE = 28
NUM_CLASSES = 10


def _glyph_array(digit: int) -> np.ndarray:
    """The 7x5 float bitmap of one digit."""
    rows = _GLYPHS[digit]
    return np.array(
        [[1.0 if ch == "#" else 0.0 for ch in row] for row in rows],
        dtype=np.float32,
    )


def _render_digit(digit: int, rng: np.random.Generator) -> np.ndarray:
    """One randomised 28x28 rendering of ``digit``."""
    glyph = _glyph_array(digit)
    # Random integer upscale (stroke thickness / size variation).
    scale_r = rng.integers(2, 4)  # 14 or 21 rows
    scale_c = rng.integers(2, 5)  # 10..20 cols
    big = np.kron(glyph, np.ones((scale_r, scale_c), dtype=np.float32))
    # Per-pixel stroke intensity jitter.
    big *= rng.uniform(0.7, 1.0, size=big.shape).astype(np.float32)
    image = np.zeros((IMAGE_SIZE, IMAGE_SIZE), dtype=np.float32)
    max_r = IMAGE_SIZE - big.shape[0]
    max_c = IMAGE_SIZE - big.shape[1]
    r0 = rng.integers(0, max_r + 1)
    c0 = rng.integers(0, max_c + 1)
    image[r0:r0 + big.shape[0], c0:c0 + big.shape[1]] = big
    # Cheap separable blur to soften the edges.
    image = (image + np.roll(image, 1, axis=0) + np.roll(image, -1, axis=0)) / 3.0
    image = (image + np.roll(image, 1, axis=1) + np.roll(image, -1, axis=1)) / 3.0
    # Background noise.
    image += rng.normal(0.0, 0.05, size=image.shape).astype(np.float32)
    return np.clip(image, 0.0, 1.0)


def _generate(count: int, rng: np.random.Generator) -> tuple[np.ndarray, np.ndarray]:
    """``count`` labelled images with a balanced class distribution."""
    labels = rng.integers(0, NUM_CLASSES, size=count)
    images = np.empty((count, 1, IMAGE_SIZE, IMAGE_SIZE), dtype=np.float32)
    for i, digit in enumerate(labels):
        images[i, 0] = _render_digit(int(digit), rng)
    return images, labels.astype(np.int64)


@DATASETS.register("mnist")
def make_mnist(
    train_size: int = 2000, val_size: int = 500, seed: int = 0
) -> Dataset:
    """Build a synthetic-MNIST dataset.

    Paper-scale splits are 60,000 / 10,000 (Table 2); the defaults here
    are laptop-friendly.  ``seed`` controls every random choice, so the
    same call always returns the same data.
    """
    if train_size <= 0 or val_size <= 0:
        raise ValueError("split sizes must be positive")
    rng = np.random.default_rng(seed)
    train_x, train_y = _generate(train_size, rng)
    val_x, val_y = _generate(val_size, rng)
    return Dataset(
        name="synthetic-mnist",
        train_x=train_x,
        train_y=train_y,
        val_x=val_x,
        val_y=val_y,
        num_classes=NUM_CLASSES,
    )
