"""Campaign runner: durable, sharded search fleets.

A :class:`Campaign` takes a grid of :class:`~repro.orchestration.shards.ShardSpec`
shards and runs them to completion:

* **fan-out** -- shards execute across a
  :class:`~repro.service.pool.WorkerPool` of **long-lived** worker
  processes (``max_workers``), each worker rebuilding its search from
  the spec alone.  The pool is the same runtime the service's process
  backend and the federation agents run jobs on: workers stay warm
  across shards (imports, tiling memo), and small shards batch
  together per worker submission (``batch_trials``) so dispatch
  overhead amortizes;
* **durability** -- with a ``checkpoint_dir``, every shard snapshots
  atomically as it runs, and a shard re-queued after a worker death
  *resumes* from its last snapshot instead of restarting;
* **recovery** -- a worker death (OOM kill, interpreter crash)
  re-queues exactly the shards that died with it, individually, up to
  ``max_pool_restarts`` deaths; shards that still have no result then
  fall back to in-process execution, so a campaign always terminates
  with a complete result set;
* **merging** -- finished shards merge deterministically in grid order
  into a :class:`CampaignResult`: per-shard ledgers plus the
  campaign-level accuracy-latency Pareto frontier
  (:func:`repro.experiments.pareto.frontier_from_trials`).  The merged
  result is identical whatever order workers finish in, so ``N`` shards
  in parallel equal the same shards run serially.

Progress streams through an optional callback as typed
:class:`CampaignEvent` records -- the CLI prints them, tests assert on
them, services can forward them to their own telemetry.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass
from functools import partial
from pathlib import Path
from typing import Any, Callable

from repro.core.search import SearchCancelled, SearchResult
from repro.core.serialization import atomic_write_json, search_result_to_dict
from repro.events import (
    Event,
    PoolFallback,
    SearchFinished,
    SearchStarted,
    ShardCached,
    ShardRequeued,
)
from repro.experiments.pareto import ParetoFront, frontier_from_trials
from repro.experiments.reporting import format_table
from repro.orchestration.shards import (
    ShardOutcome,
    ShardSpec,
    run_shard,
)

#: Campaign artifact schema tag.
CAMPAIGN_SCHEMA = 1

#: Campaign progress notifications are typed :mod:`repro.events`
#: records now (``SearchStarted`` / ``SearchFinished`` /
#: ``ShardRequeued`` / ``PoolFallback``); the old ``CampaignEvent``
#: name remains as an alias of the shared base class.  Events keep
#: ``.kind`` / ``.shard_id`` / ``.message``, so consumers *reading*
#: them are unaffected; code that *constructed* CampaignEvents must
#: build the typed classes instead (``kind`` is a class attribute
#: now, not a constructor argument).
CampaignEvent = Event

ProgressCallback = Callable[[Event], None]


@dataclass
class CampaignResult:
    """Everything a finished campaign produced.

    Attributes:
        outcomes: one entry per shard, in deterministic grid order.
        frontier: campaign-level Pareto frontier merged over every
            trained trial of every shard.
        wall_seconds: end-to-end campaign wall time.
    """

    outcomes: list[ShardOutcome]
    frontier: ParetoFront
    wall_seconds: float = 0.0

    @property
    def total_trials(self) -> int:
        """Trials summed over shards."""
        return sum(len(o.result.trials) for o in self.outcomes)

    @property
    def requeued_shards(self) -> int:
        """Shards that survived at least one worker death."""
        return sum(1 for o in self.outcomes if o.requeues > 0)

    def outcome(self, shard_id: str) -> ShardOutcome:
        """Look up one shard's outcome by id."""
        for candidate in self.outcomes:
            if candidate.spec.shard_id == shard_id:
                return candidate
        known = ", ".join(o.spec.shard_id for o in self.outcomes)
        raise KeyError(f"unknown shard {shard_id!r}; known: {known}")

    def best_accuracy(self) -> float:
        """Highest trained accuracy across the whole campaign."""
        best = max(
            (p.accuracy for p in self.frontier.points), default=None
        )
        if best is None:
            raise ValueError("campaign trained no children")
        return best

    def format(self) -> str:
        """Per-shard summary table plus the merged frontier size."""
        headers = ["Shard", "Trials", "Trained", "Pruned", "BestAcc",
                   "BestLat(ms)", "Requeues"]
        rows = []
        for outcome in self.outcomes:
            result = outcome.result
            trained = [
                t for t in result.trials
                if t.accuracy is not None and t.latency_ms is not None
            ]
            best = (max(trained, key=lambda t: t.accuracy)
                    if trained else None)
            rows.append([
                outcome.spec.shard_id,
                str(len(result.trials)),
                str(result.trained_count),
                str(result.pruned_count),
                "-" if best is None else f"{100 * best.accuracy:.2f}%",
                "-" if best is None else f"{best.latency_ms:.2f}",
                str(outcome.requeues),
            ])
        table = format_table(headers, rows)
        return (f"{table}\ncampaign frontier: {len(self.frontier.points)} "
                f"non-dominated points from {self.frontier.evaluated_count} "
                "trained trials")

    def to_dict(self) -> dict[str, Any]:
        """JSON-compatible form (the campaign artifact).

        Lossless: :meth:`from_dict` rebuilds an equal result, which is
        how the service's content-addressed store replays cached sweep
        results.
        """
        from repro.core.serialization import architecture_to_dict

        return {
            "schema": CAMPAIGN_SCHEMA,
            "wall_seconds": self.wall_seconds,
            "shards": [
                {
                    "spec": o.spec.to_dict(),
                    "requeues": o.requeues,
                    "resumed_from": o.resumed_from,
                    "result": search_result_to_dict(o.result),
                }
                for o in self.outcomes
            ],
            "frontier": [
                {
                    "latency_ms": p.latency_ms,
                    "accuracy": p.accuracy,
                    "architecture": architecture_to_dict(p.architecture),
                }
                for p in self.frontier.points
            ],
            "frontier_evaluated_count": self.frontier.evaluated_count,
            "frontier_exhaustive": self.frontier.exhaustive,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "CampaignResult":
        """Inverse of :meth:`to_dict` (the campaign artifact reader)."""
        from repro.core.serialization import architecture_from_dict
        from repro.experiments.pareto import ParetoPoint

        schema = data.get("schema", CAMPAIGN_SCHEMA)
        if schema != CAMPAIGN_SCHEMA:
            raise ValueError(f"unsupported campaign schema {schema!r}")
        outcomes = [
            ShardOutcome.from_payload(shard, requeues=shard.get("requeues", 0))
            for shard in data["shards"]
        ]
        points = [
            ParetoPoint(
                architecture=architecture_from_dict(p["architecture"]),
                latency_ms=p["latency_ms"],
                accuracy=p["accuracy"],
            )
            for p in data["frontier"]
        ]
        frontier = ParetoFront(
            points=points,
            evaluated_count=data.get(
                "frontier_evaluated_count", len(points)
            ),
            exhaustive=data.get("frontier_exhaustive", False),
        )
        return cls(
            outcomes=outcomes,
            frontier=frontier,
            wall_seconds=data.get("wall_seconds", 0.0),
        )


def save_campaign_result(result: CampaignResult, path: str | Path) -> None:
    """Atomically write the campaign artifact JSON."""
    atomic_write_json(result.to_dict(), path)


def merge_outcomes(outcomes: list[ShardOutcome]) -> ParetoFront:
    """Campaign-level frontier over every shard's trained trials.

    Deterministic in the order of ``outcomes`` (ties resolve to the
    earlier shard), which the campaign fixes to grid order -- never to
    worker completion order.
    """
    trials = [t for outcome in outcomes for t in outcome.result.trials]
    return frontier_from_trials(trials)


class Campaign:
    """Run a grid of shards to completion, durably and in parallel.

    Parameters:
        shards: the grid, typically from
            :func:`~repro.orchestration.shards.shard_grid`.
        checkpoint_dir: where shards snapshot; ``None`` disables
            checkpointing (shards then restart from scratch on
            re-queue, still correct but wasteful).
        checkpoint_every: snapshot cadence in trials (default: ~10 per
            shard).
        max_pool_restarts: how many broken-pool rebuilds to attempt
            before falling back to in-process execution.
        progress: optional :class:`CampaignEvent` callback.
        store: a :class:`~repro.service.store.ResultStore` to memoize
            shards through.  Before a shard runs, the campaign reads
            the store at the shard's canonical hash
            (:attr:`~repro.orchestration.shards.ShardSpec.shard_hash`)
            and serves a valid entry instead of executing (publishing
            :class:`~repro.events.ShardCached`); after a shard
            finishes, its canonical scrubbed payload is written back.
            Because stored shard bytes are a pure function of the
            shard's plan, the merged result is byte-identical whether
            shards ran or were cached.  ``None`` (the default)
            disables memoization.
        batch_trials: batch small shards -- those whose resolved trial
            count is below this threshold -- together per worker
            submission, packing consecutive small shards until their
            cumulative trials would exceed it.  Amortizes per-dispatch
            overhead on grids of many tiny shards.  ``None`` (the
            default) dispatches every shard individually.
        pool: a :class:`~repro.service.pool.WorkerPool` to dispatch
            pooled shards on (it is *not* closed by the campaign).
            ``None`` (the default) stands up a transient pool per
            pooled run -- workers are still reused across that run's
            shards.
    """

    def __init__(
        self,
        shards: list[ShardSpec],
        checkpoint_dir: str | Path | None = None,
        checkpoint_every: int | None = None,
        max_pool_restarts: int = 2,
        progress: ProgressCallback | None = None,
        store: Any = None,
        batch_trials: int | None = None,
        pool: Any = None,
    ):
        if not shards:
            raise ValueError("a campaign needs at least one shard")
        ids = [s.shard_id for s in shards]
        if len(set(ids)) != len(ids):
            raise ValueError("shard ids must be unique within a campaign")
        if max_pool_restarts < 0:
            raise ValueError(
                f"max_pool_restarts must be >= 0, got {max_pool_restarts}"
            )
        if checkpoint_every is not None and checkpoint_dir is None:
            raise ValueError(
                "checkpoint_every without a checkpoint_dir would snapshot "
                "nowhere; pass both"
            )
        if batch_trials is not None and batch_trials < 1:
            raise ValueError(
                f"batch_trials must be >= 1, got {batch_trials}"
            )
        self.shards = list(shards)
        self.checkpoint_dir = (
            None if checkpoint_dir is None else str(checkpoint_dir)
        )
        self.checkpoint_every = checkpoint_every
        self.max_pool_restarts = max_pool_restarts
        self.progress = progress
        self.store = store
        self.batch_trials = batch_trials
        self.pool = pool

    def run(self, max_workers: int = 1, should_stop=None) -> CampaignResult:
        """Execute every shard and merge the results.

        ``max_workers <= 1`` runs shards serially in-process (still
        checkpointed); larger values fan shards across a process pool.
        Worker death re-queues the affected shards -- resuming from
        their last checkpoints -- onto a rebuilt pool, falling back to
        serial execution once ``max_pool_restarts`` is exhausted.

        ``should_stop`` (a zero-argument callable) cancels the campaign
        cooperatively: the serial path polls it between trials inside
        each shard (snapshotting before raising, when checkpointing is
        on); the pooled path stops scheduling new shards, waits for the
        in-flight ones (their own cadence snapshots survive) and then
        raises.  Cancellation surfaces as
        :class:`~repro.core.search.SearchCancelled`, with ``completed``
        counting finished shards.
        """
        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        started = time.perf_counter()
        if self.checkpoint_dir is not None:
            Path(self.checkpoint_dir).mkdir(parents=True, exist_ok=True)
        pending: dict[str, ShardSpec] = {
            s.shard_id: s for s in self.shards
        }
        requeues: dict[str, int] = {s.shard_id: 0 for s in self.shards}
        outcomes: dict[str, ShardOutcome] = {}
        self._serve_cached(pending, outcomes)
        if max_workers > 1 and len(pending) > 1:
            self._run_pooled(pending, outcomes, requeues, max_workers,
                             should_stop=should_stop)
        for shard_id, spec in list(pending.items()):
            self._publish(SearchStarted(shard_id, "running in-process"))
            # Kwarg only when set, so test doubles with the historical
            # 3-argument run_shard signature keep working.
            stop_kwargs = (
                {} if should_stop is None else {"should_stop": should_stop}
            )
            try:
                payload = run_shard(
                    spec, self.checkpoint_dir, self.checkpoint_every,
                    **stop_kwargs,
                )
            except SearchCancelled:
                raise SearchCancelled(len(outcomes)) from None
            self._store_payload(spec, payload)
            outcomes[shard_id] = ShardOutcome.from_payload(
                payload, requeues=requeues[shard_id]
            )
            del pending[shard_id]
            self._publish(SearchFinished(
                shard_id, f"{len(outcomes[shard_id].result.trials)} trials"
            ))
        ordered = [outcomes[s.shard_id] for s in self.shards]
        return CampaignResult(
            outcomes=ordered,
            frontier=merge_outcomes(ordered),
            wall_seconds=time.perf_counter() - started,
        )

    # -- internals -----------------------------------------------------------

    def _serve_cached(
        self,
        pending: dict[str, ShardSpec],
        outcomes: dict[str, ShardOutcome],
    ) -> None:
        """Read-through: answer shards the store already holds.

        Runs before any scheduling, so a memoized shard costs one
        store lookup instead of a pool slot.  Each hit publishes
        :class:`~repro.events.ShardCached` (where an executed shard
        would publish ``SearchStarted``/``SearchFinished``) and lands
        in ``outcomes`` with ``cached=True``.  Invalid entries --
        corrupt bytes, a payload whose shard id does not match, an
        undecodable document -- are treated as misses; the shard then
        executes and its ``put`` repairs the entry.
        """
        if self.store is None:
            return
        for shard_id, spec in list(pending.items()):
            outcome = self._cached_outcome(spec)
            if outcome is None:
                continue
            outcomes[shard_id] = outcome
            del pending[shard_id]
            self._publish(ShardCached(
                shard_id,
                f"served from the result store "
                f"({len(outcome.result.trials)} trials)",
                plan_hash=spec.shard_hash,
            ))

    def _cached_outcome(self, spec: ShardSpec) -> ShardOutcome | None:
        """Decode one shard's stored payload (None on miss/invalid)."""
        payload = self.store.get_payload(spec.shard_hash)
        if (not isinstance(payload, dict)
                or payload.get("shard_id") != spec.shard_id):
            return None
        try:
            return dataclasses.replace(
                ShardOutcome.from_payload(payload), cached=True
            )
        except (KeyError, TypeError, ValueError):
            return None

    def _store_payload(self, spec: ShardSpec, payload: dict) -> None:
        """Write-through: persist one freshly-run shard's payload.

        ``put`` canonicalizes and scrubs (wall clocks, resume
        provenance), so the stored bytes are a pure function of the
        shard's plan whichever run produced them.  Memoization is an
        optimization: a store that cannot persist (disk full,
        permissions) must not fail a campaign that already holds the
        result, so I/O errors are swallowed.
        """
        if self.store is None:
            return
        try:
            self.store.put(spec.shard_hash, payload)
        except OSError:
            pass

    def _run_pooled(
        self,
        pending: dict[str, ShardSpec],
        outcomes: dict[str, ShardOutcome],
        requeues: dict[str, int],
        max_workers: int,
        should_stop=None,
    ) -> None:
        """Drain ``pending`` through a :class:`WorkerPool`.

        Uses the injected ``self.pool`` when one was provided (shared
        with the service runtime), else a transient pool sized to the
        work -- either way the workers are long-lived across shards,
        which is what the old per-run ``ProcessPoolExecutor`` never
        gave us.  Shards whose results arrive are moved to
        ``outcomes``; anything still pending when the death budget
        runs out is left for the caller's serial fallback.  Exceptions
        raised *by a shard itself* (bad spec reaching a worker,
        evaluator bugs) propagate -- only worker death triggers
        re-queuing.
        """
        # Deferred import: orchestration must stay importable without
        # dragging the whole service package in at module-import time.
        from repro.service.pool import WorkerPool

        workers = min(max_workers, len(pending))
        pool = self.pool
        transient = pool is None
        if transient:
            pool = WorkerPool(workers, name="repro-campaign")
        try:
            self._dispatch_pooled(pool, pending, outcomes, requeues,
                                  workers, should_stop=should_stop)
        finally:
            if transient:
                pool.close()

    def _dispatch_units(
        self, pending: dict[str, ShardSpec]
    ) -> list[list[ShardSpec]]:
        """Chunk pending shards into per-worker submission units.

        Grid order throughout.  Without ``batch_trials`` every shard
        is its own unit; with it, consecutive *small* shards (resolved
        trials below the threshold) pack together until their
        cumulative trials would exceed it, so a grid of tiny shards
        costs one dispatch per batch instead of one per shard.  Large
        shards always travel alone.  Batching never affects results:
        each shard in a unit still runs, checkpoints and reports
        individually.
        """
        units: list[list[ShardSpec]] = []
        batch: list[ShardSpec] = []
        batched_trials = 0
        for spec in self.shards:
            if spec.shard_id not in pending:
                continue
            trials = spec.resolved_trials
            if self.batch_trials is None or trials >= self.batch_trials:
                units.append([spec])
                continue
            if batch and batched_trials + trials > self.batch_trials:
                units.append(batch)
                batch, batched_trials = [], 0
            batch.append(spec)
            batched_trials += trials
        if batch:
            units.append(batch)
        return units

    def _tiling_cache_dir(self) -> str | None:
        """Where pool workers point their tiling memo's disk tier.

        Anchored to the result store's directory (``<store>/tiling``)
        when the campaign memoizes through a persistent store -- the
        same placement the service's process backend uses, so campaign
        workers and service jobs warm each other.  None (no shared
        tier) without a persistent store.
        """
        directory = getattr(self.store, "directory", None)
        if directory is None:
            return None
        return str(Path(directory) / "tiling")

    def _dispatch_pooled(
        self,
        pool: Any,
        pending: dict[str, ShardSpec],
        outcomes: dict[str, ShardOutcome],
        requeues: dict[str, int],
        workers: int,
        should_stop=None,
    ) -> None:
        """Pump dispatch units through the pool until drained.

        A worker death re-queues exactly its unit's unfinished shards,
        **individually** (their checkpoints make the re-run a resume);
        once deaths exceed ``max_pool_restarts`` no new units are
        dispatched and the leftovers fall to the serial path
        (``PoolFallback``).  A stop request cancels the in-flight
        units cooperatively -- batch boundaries plus each shard's own
        cadence checkpoints preserve progress -- and raises
        :class:`~repro.core.search.SearchCancelled`.
        """
        tiling_dir = self._tiling_cache_dir()
        setup = (None if tiling_dir is None
                 else partial(_configure_worker_tiling, tiling_dir))
        queue = self._dispatch_units(pending)
        inflight: dict[Any, list[ShardSpec]] = {}
        deaths = 0
        try:
            while queue or inflight:
                if should_stop is not None and should_stop():
                    self._drain_cancelled(pool, inflight)
                    raise SearchCancelled(len(outcomes))
                while queue and deaths <= self.max_pool_restarts:
                    # Never block on a checkout while holding in-flight
                    # handles: their workers free up only when *we*
                    # pump the pipes below (a blocking submit would
                    # deadlock a fully-dispatched pool).
                    if inflight and pool.available() <= 0:
                        break
                    unit = queue.pop(0)
                    handle = pool.submit(
                        # Late-bound module global: monkeypatched
                        # run_shard doubles dispatch like the real one.
                        run_shard,
                        [(spec, self.checkpoint_dir, self.checkpoint_every)
                         for spec in unit],
                        on_item=self._on_shard_done(
                            unit, pending, outcomes, requeues
                        ),
                        setup=setup,
                        should_stop=partial(_submit_should_give_up,
                                            inflight, should_stop),
                    )
                    if handle is None:  # checkout yielded to stop/pump
                        queue.insert(0, unit)
                        break
                    inflight[handle] = unit
                    for spec in unit:
                        self._publish(SearchStarted(
                            spec.shard_id,
                            f"submitted to {workers}-worker pool",
                        ))
                if not inflight:
                    if deaths > self.max_pool_restarts:
                        break
                    continue
                for handle in pool.wait(list(inflight), timeout=0.5):
                    deaths += self._finish_handle(
                        handle, inflight.pop(handle), requeues, queue
                    )
        except SearchCancelled:
            raise
        except BaseException:
            # A failing shard (or callback) must not leave orphaned
            # tasks writing into unread handles on a shared pool.
            self._drain_cancelled(pool, inflight)
            raise
        if deaths > self.max_pool_restarts and pending:
            self._publish(PoolFallback(
                "",
                f"pool died {deaths} times; running the "
                f"remaining {len(pending)} shard(s) in-process",
            ))

    def _on_shard_done(
        self,
        unit: list[ShardSpec],
        pending: dict[str, ShardSpec],
        outcomes: dict[str, ShardOutcome],
        requeues: dict[str, int],
    ):
        """Per-unit completion callback: one call per finished shard."""
        def on_item(index: int, payload: dict) -> None:
            spec = unit[index]
            self._store_payload(spec, payload)
            outcome = ShardOutcome.from_payload(
                payload, requeues=requeues[spec.shard_id]
            )
            outcomes[spec.shard_id] = outcome
            del pending[spec.shard_id]
            self._publish(SearchFinished(
                spec.shard_id,
                f"{len(outcome.result.trials)} trials"
                + (" (resumed)" if outcome.resumed_from else ""),
            ))
        return on_item

    def _finish_handle(
        self,
        handle: Any,
        unit: list[ShardSpec],
        requeues: dict[str, int],
        queue: list[list[ShardSpec]],
    ) -> int:
        """Settle one finished unit; returns the worker deaths (0/1).

        On death, each shard of the unit that produced no result is
        re-queued as its *own* unit -- a batch never dies as a block,
        and the re-run resumes from the shard's last checkpoint.
        """
        if handle.error is not None:
            for index in handle.lost_indices:
                spec = unit[index]
                requeues[spec.shard_id] += 1
                self._publish(ShardRequeued(
                    spec.shard_id,
                    "worker died; re-queuing from last checkpoint"
                    if self.checkpoint_dir is not None
                    else "worker died; re-queuing from scratch",
                ))
                queue.append([spec])
            return 1
        tag = handle.outcome[0]
        if tag == "failed":
            message, original = handle.outcome[2], handle.outcome[3]
            if original is not None:
                raise original
            raise RuntimeError(message)
        # "done": every item already landed via on_item.  "cancelled"
        # only occurs during a drain, where leftovers stay pending.
        return 0

    def _drain_cancelled(self, pool: Any, inflight: dict) -> None:
        """Cancel and settle every in-flight unit (results dropped).

        Mirrors the old executor semantics: in-flight work runs to its
        next poll boundary, its results are discarded (callbacks
        disabled), and the pool comes back with every worker idle --
        mandatory when the pool is shared with the service runtime.
        """
        for handle in inflight:
            handle.on_item = None
            pool.cancel(handle)
        remaining = [h for h in inflight if not h.finished]
        while remaining:
            pool.wait(remaining, timeout=0.5)
            remaining = [h for h in remaining if not h.finished]
        inflight.clear()

    def _publish(self, event: Event) -> None:
        """Hand one typed event to the progress callback (if any)."""
        if self.progress is not None:
            self.progress(event)


def _configure_worker_tiling(directory: str) -> None:
    """Worker-side setup: point the tiling memo at the shared disk tier.

    Module-level (not a lambda/closure) so it crosses the worker pipe
    by reference; runs once per dispatch unit in the child.
    """
    from repro.fpga.tiling import configure_disk_cache

    configure_disk_cache(directory)


def _submit_should_give_up(inflight: dict, should_stop) -> bool:
    """Checkout guard for :meth:`Campaign._dispatch_pooled`'s submits.

    Gives the checkout up (submit returns None) when a stop was
    requested, or the moment we hold in-flight handles -- their
    workers only free up when the dispatch loop pumps the pipes, so
    waiting inside submit could deadlock a fully-dispatched pool.
    """
    return bool(inflight) or (should_stop is not None and should_stop())


def run_campaign(
    shards: list[ShardSpec],
    max_workers: int = 1,
    checkpoint_dir: str | Path | None = None,
    checkpoint_every: int | None = None,
    progress: ProgressCallback | None = None,
    store: Any = None,
    batch_trials: int | None = None,
    pool: Any = None,
) -> CampaignResult:
    """One-call convenience wrapper around :class:`Campaign`."""
    return Campaign(
        shards,
        checkpoint_dir=checkpoint_dir,
        checkpoint_every=checkpoint_every,
        progress=progress,
        store=store,
        batch_trials=batch_trials,
        pool=pool,
    ).run(max_workers=max_workers)
