"""Shard specifications: one self-contained search per shard.

A :class:`ShardSpec` is plain, JSON-serializable data -- dataset and
catalog device names, registry component keys, seeds, trial budget --
and is a thin wrapper over a serialized single-search
:class:`~repro.plans.RunPlan`: :meth:`ShardSpec.to_plan` /
:meth:`ShardSpec.from_plan` convert losslessly, and
:func:`build_search` reconstructs the exact search object in any
process through the same plan builders (:func:`repro.api.build_search`)
every other entry point uses.  That property is what makes campaigns
shardable: a worker process receives only the spec, builds the search
locally, and the trajectory it produces is fully determined by the spec
(the surrogate landscape, controller initialisation and RNG stream are
all seeded from it).  It is also what makes shards recoverable: a
re-queued spec plus the shard's last checkpoint reproduce the exact run
the dead worker was executing.

:func:`plan_shards` expands a sweep plan's scenario -- the
(dataset x device x seed x search-config) cross product -- into the
shard grid; :func:`shard_grid` remains as the kwarg spelling of the
same expansion.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable, Sequence

import numpy as np

from repro.configs import get_config
from repro.core.search import Search, SearchResult
from repro.core.serialization import search_result_from_dict, search_result_to_dict
from repro.fpga.device import get_device
from repro.plans import (
    ExecutionPolicy,
    RunPlan,
    ScenarioPlan,
    SearchPlan,
)

#: Shard kinds: the two search loops.
NAS_KIND = "nas"
FNAS_KIND = "fnas"

#: Default checkpoint cadence when a campaign enables checkpointing
#: without choosing one: roughly ten snapshots per shard.
DEFAULT_CHECKPOINT_FRACTION = 10

#: Component keys whose (default) values stay out of shard ids, so ids
#: from before the registry redesign remain stable.
_DEFAULT_COMPONENTS = SearchPlan()


@dataclass(frozen=True)
class ShardSpec:
    """One shard of a campaign: a fully-determined search run.

    Attributes:
        dataset: Table 2 dataset name (``mnist`` / ``cifar10`` /
            ``imagenet``).
        device: FPGA catalog name (see :data:`repro.registry.DEVICES`).
        boards: how many copies of ``device`` form the platform.
        kind: ``"nas"`` or ``"fnas"``.
        spec_ms: FNAS timing specification; must be ``None`` for NAS.
        seed: controller-initialisation and RNG-stream seed.
        surrogate_seed: seed of the surrogate accuracy landscape;
            shards meant to be comparable must share it.
        trials: children to search (``None``: the dataset's Table 2
            count).
        batch_size: candidates per controller step.
        eval_workers: process-pool workers for child evaluation inside
            the shard (1 = in-process).
        min_latency_fallback: FNAS-only; train the smallest child when
            no sampled one meets the spec.
        controller: :data:`repro.registry.CONTROLLERS` key.
        evaluator: :data:`repro.registry.EVALUATORS` key.
        estimator: :data:`repro.registry.ESTIMATORS` key.
    """

    dataset: str
    device: str
    boards: int = 1
    kind: str = FNAS_KIND
    spec_ms: float | None = None
    seed: int = 0
    surrogate_seed: int = 0
    trials: int | None = None
    batch_size: int = 1
    eval_workers: int = 1
    min_latency_fallback: bool = True
    controller: str = _DEFAULT_COMPONENTS.controller
    evaluator: str = _DEFAULT_COMPONENTS.evaluator
    estimator: str = _DEFAULT_COMPONENTS.estimator

    def __post_init__(self) -> None:
        if self.kind not in (NAS_KIND, FNAS_KIND):
            raise ValueError(
                f"unknown shard kind {self.kind!r}; expected "
                f"{NAS_KIND!r} or {FNAS_KIND!r}"
            )
        if self.kind == FNAS_KIND and self.spec_ms is None:
            raise ValueError("fnas shards need a spec_ms")
        if self.kind == NAS_KIND and self.spec_ms is not None:
            raise ValueError("nas shards must not set spec_ms")
        if self.boards <= 0:
            raise ValueError(f"boards must be positive, got {self.boards}")
        if self.batch_size <= 0:
            raise ValueError(
                f"batch_size must be positive, got {self.batch_size}"
            )
        if self.eval_workers <= 0:
            raise ValueError(
                f"eval_workers must be positive, got {self.eval_workers}"
            )
        # Fail early on unknown names, in the submitting process rather
        # than in a worker.  Component keys are checked by the
        # SearchPlan this spec wraps.
        get_config(self.dataset)
        get_device(self.device)
        self._search_plan()

    @property
    def shard_id(self) -> str:
        """Stable unique name; doubles as the checkpoint file stem."""
        parts = [self.dataset, self.device]
        if self.boards > 1:
            parts[-1] += f"x{self.boards}"
        if self.kind == FNAS_KIND:
            parts.append(f"fnas{self.spec_ms:g}ms")
        else:
            parts.append(NAS_KIND)
        parts.append(f"s{self.seed}")
        if self.surrogate_seed != self.seed:
            parts.append(f"ss{self.surrogate_seed}")
        if self.batch_size > 1:
            parts.append(f"b{self.batch_size}")
        # Non-default components mark the id so grids mixing components
        # stay collision-free (defaults keep pre-registry ids stable).
        for label, key, default in (
            ("c", self.controller, _DEFAULT_COMPONENTS.controller),
            ("e", self.evaluator, _DEFAULT_COMPONENTS.evaluator),
            ("l", self.estimator, _DEFAULT_COMPONENTS.estimator),
        ):
            if key != default:
                parts.append(f"{label}-{key}")
        return "-".join(parts)

    @property
    def shard_hash(self) -> str:
        """Content-address of this shard's result in the store.

        Exactly ``plan_hash(self.to_plan())`` -- the canonical hash of
        the shard's single-search plan.  Because :meth:`to_plan`
        normalizes result-irrelevant execution knobs away, two shards
        computing the same search share one hash (and one stored
        result) regardless of ``eval_workers``, ``shard_workers``,
        backend, or checkpoint policy.
        """
        from repro.plans import plan_hash

        return plan_hash(self.to_plan())

    @property
    def resolved_trials(self) -> int:
        """Trial budget with the Table 2 default applied."""
        if self.trials is not None:
            return self.trials
        return get_config(self.dataset).trials

    def checkpoint_path(self, checkpoint_dir: str | Path) -> Path:
        """Where this shard's snapshot lives under ``checkpoint_dir``."""
        return Path(checkpoint_dir) / f"{self.shard_id}.checkpoint.json"

    def _search_plan(self) -> SearchPlan:
        """The :class:`~repro.plans.SearchPlan` this spec wraps."""
        return SearchPlan(
            controller=self.controller,
            evaluator=self.evaluator,
            estimator=self.estimator,
            seed=self.seed,
            trials=self.trials,
            min_latency_fallback=self.min_latency_fallback,
        )

    def to_plan(self) -> RunPlan:
        """The *canonical* single-search :class:`~repro.plans.RunPlan`.

        ``workload="search"`` plans and shard specs are two spellings
        of the same data, and :func:`build_search` goes through the
        plan form.  The plan is canonical: only trajectory-relevant
        execution knobs survive (``batch_size`` changes the batched
        controller trajectory; ``eval_workers`` and the rest of
        :class:`~repro.plans.ExecutionPolicy` never do, and are
        normalized to their defaults).  That makes
        :func:`repro.plans.plan_hash` of this plan -- see
        :attr:`shard_hash` -- a pure function of *what* the shard
        computes, so shards of different sweeps share result-store
        entries whatever knobs those sweeps ran under.
        ``ShardSpec.from_plan(spec.to_plan())`` is identity for specs
        at default ``eval_workers``; :func:`build_search` re-applies a
        non-default ``eval_workers`` when building the live search.
        """
        return RunPlan(
            workload="search",
            search=self._search_plan(),
            execution=ExecutionPolicy(batch_size=self.batch_size),
            scenario=ScenarioPlan(
                datasets=(self.dataset,),
                devices=(self.device,),
                boards=self.boards,
                seeds=(self.seed,),
                specs_ms=() if self.spec_ms is None else (self.spec_ms,),
                include_nas=self.kind == NAS_KIND,
                surrogate_seed=self.surrogate_seed,
            ),
        )

    @classmethod
    def from_plan(cls, plan: RunPlan) -> "ShardSpec":
        """Build a spec from a single-search plan (:meth:`to_plan` inverse)."""
        scenario = plan.scenario
        if len(scenario.datasets) != 1 or len(scenario.devices) != 1:
            raise ValueError(
                "a shard wraps a single-scenario plan (one dataset, one "
                f"device); got datasets={scenario.datasets} "
                f"devices={scenario.devices}"
            )
        if len(scenario.specs_ms) > 1:
            raise ValueError(
                f"a shard runs one search; got specs {scenario.specs_ms}"
            )
        if not scenario.specs_ms and not scenario.include_nas:
            raise ValueError(
                "a single-search scenario needs one timing spec (FNAS) or "
                "include_nas=True (the NAS baseline)"
            )
        from repro.api import landscape_seed

        return cls(
            dataset=scenario.datasets[0],
            device=scenario.devices[0],
            boards=scenario.boards,
            kind=NAS_KIND if not scenario.specs_ms else FNAS_KIND,
            spec_ms=scenario.specs_ms[0] if scenario.specs_ms else None,
            seed=plan.search.seed,
            surrogate_seed=landscape_seed(plan),
            trials=plan.search.trials,
            batch_size=plan.execution.batch_size,
            eval_workers=plan.execution.eval_workers,
            min_latency_fallback=plan.search.min_latency_fallback,
            controller=plan.search.controller,
            evaluator=plan.search.evaluator,
            estimator=plan.search.estimator,
        )

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form for campaign artifacts."""
        return {
            "dataset": self.dataset,
            "device": self.device,
            "boards": self.boards,
            "kind": self.kind,
            "spec_ms": self.spec_ms,
            "seed": self.seed,
            "surrogate_seed": self.surrogate_seed,
            "trials": self.trials,
            "batch_size": self.batch_size,
            "eval_workers": self.eval_workers,
            "min_latency_fallback": self.min_latency_fallback,
            "controller": self.controller,
            "evaluator": self.evaluator,
            "estimator": self.estimator,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ShardSpec":
        """Inverse of :meth:`to_dict`; rejects unknown keys by name."""
        from repro.plans import _checked

        return cls(**_checked(cls, data, section="shard"))


def plan_shards(plan: RunPlan) -> list[ShardSpec]:
    """Expand a sweep plan's scenario into its shard grid.

    The (dataset x device x seed x search-config) cross product:
    ``scenario.specs_ms`` adds one FNAS shard per timing spec and
    ``scenario.include_nas`` the accuracy-only baseline, per cell.
    ``scenario.seeds`` falls back to the search plan's seed;
    ``scenario.surrogate_seed=None`` keeps one shared landscape
    (seed 0) across all shards so their results are comparable.
    Shards come back in deterministic grid order -- the order campaign
    merging uses regardless of which worker finishes first.
    """
    scenario = plan.scenario
    if not scenario.specs_ms and not scenario.include_nas:
        raise ValueError("a grid needs specs_ms and/or include_nas")
    seeds = scenario.seeds or (plan.search.seed,)
    for axis, values in (("datasets", scenario.datasets),
                         ("devices", scenario.devices),
                         ("seeds", seeds)):
        if not values:
            raise ValueError(f"a grid needs at least one entry in {axis}")
    landscape = (0 if scenario.surrogate_seed is None
                 else scenario.surrogate_seed)
    shards: list[ShardSpec] = []
    for dataset in scenario.datasets:
        for device in scenario.devices:
            for seed in seeds:
                common = dict(
                    dataset=dataset,
                    device=device,
                    boards=scenario.boards,
                    seed=seed,
                    surrogate_seed=landscape,
                    trials=plan.search.trials,
                    batch_size=plan.execution.batch_size,
                    eval_workers=plan.execution.eval_workers,
                    min_latency_fallback=plan.search.min_latency_fallback,
                    controller=plan.search.controller,
                    evaluator=plan.search.evaluator,
                    estimator=plan.search.estimator,
                )
                if scenario.include_nas:
                    shards.append(ShardSpec(kind=NAS_KIND, **common))
                for spec in scenario.specs_ms:
                    shards.append(
                        ShardSpec(kind=FNAS_KIND, spec_ms=spec, **common)
                    )
    _check_unique(shards)
    return shards


def shard_grid(
    datasets: Sequence[str],
    devices: Sequence[str],
    seeds: Sequence[int],
    specs_ms: Sequence[float] | None = None,
    include_nas: bool = False,
    boards: int = 1,
    trials: int | None = None,
    batch_size: int = 1,
    eval_workers: int = 1,
    surrogate_seed: int | None = None,
) -> list[ShardSpec]:
    """Kwarg spelling of :func:`plan_shards` (the historical surface).

    Builds the equivalent sweep plan and expands it, so both spellings
    produce identical grids.
    """
    for axis, values in (("datasets", datasets), ("devices", devices),
                         ("seeds", seeds)):
        if not values:
            raise ValueError(f"a grid needs at least one entry in {axis}")
    plan = RunPlan(
        workload="sweep",
        search=SearchPlan(trials=trials),
        execution=ExecutionPolicy(
            batch_size=batch_size, eval_workers=eval_workers
        ),
        scenario=ScenarioPlan(
            datasets=tuple(datasets),
            devices=tuple(devices),
            boards=boards,
            seeds=tuple(seeds),
            specs_ms=tuple(specs_ms or ()),
            include_nas=include_nas,
            surrogate_seed=surrogate_seed,
        ),
    )
    return plan_shards(plan)


def _check_unique(shards: Iterable[ShardSpec]) -> None:
    seen: set[str] = set()
    for shard in shards:
        if shard.shard_id in seen:
            raise ValueError(f"duplicate shard id {shard.shard_id!r}")
        seen.add(shard.shard_id)


def build_search(spec: ShardSpec) -> Search:
    """Reconstruct the shard's search object from its spec.

    Delegates to :func:`repro.api.build_search` on the spec's plan
    form, so shards, ``workload="search"`` plans and the paired engine
    all build components through the same registry-driven path.
    Everything is derived deterministically from the spec, so any
    process -- the submitting one, a pool worker, or a worker picking
    up after a crash -- builds the identical search.  The spec's
    ``eval_workers`` (normalized out of the canonical plan by
    :meth:`ShardSpec.to_plan`) is re-applied here, so parallel child
    evaluation still happens -- it parallelizes the work without
    changing the trajectory, which is why it can stay out of the hash.
    """
    import dataclasses

    from repro.api import build_search as build_search_from_plan

    plan = spec.to_plan()
    if spec.eval_workers != 1:
        plan = dataclasses.replace(
            plan,
            execution=dataclasses.replace(
                plan.execution, eval_workers=spec.eval_workers
            ),
        )
    return build_search_from_plan(plan)


def run_shard(
    spec: ShardSpec,
    checkpoint_dir: str | None = None,
    checkpoint_every: int | None = None,
    should_stop=None,
) -> dict[str, Any]:
    """Execute one shard to completion (pool-worker entry point).

    With a ``checkpoint_dir``, the shard snapshots its state every
    ``checkpoint_every`` trials (default: ~10 snapshots per run) and --
    crucially -- *resumes* from an existing snapshot instead of
    restarting, which is how a re-queued shard continues where a dead
    worker left off.  ``should_stop`` (in-process callers only; it
    cannot cross a pool boundary) cancels cooperatively between trials,
    snapshotting first -- see
    :class:`~repro.core.search.SearchCancelled`.  Returns a
    JSON-compatible payload so results cross the process boundary as
    plain data.
    """
    search = build_search(spec)
    trials = spec.resolved_trials
    resumed_from = None
    try:
        if checkpoint_dir is None:
            if checkpoint_every is not None:
                raise ValueError(
                    "checkpoint_every without a checkpoint_dir would "
                    "snapshot nowhere; pass both (mirrors Search.run)"
                )
            result = search.run(
                trials, np.random.default_rng(spec.seed),
                batch_size=spec.batch_size,
                should_stop=should_stop,
            )
        else:
            path = spec.checkpoint_path(checkpoint_dir)
            if checkpoint_every is None:
                checkpoint_every = max(
                    1, trials // DEFAULT_CHECKPOINT_FRACTION
                )
            if path.exists():
                snapshot = _check_snapshot_matches_spec(path, spec, trials)
                result = search.resume(path, snapshot=snapshot,
                                       should_stop=should_stop)
                resumed_from = str(path)
            else:
                path.parent.mkdir(parents=True, exist_ok=True)
                result = search.run(
                    trials, np.random.default_rng(spec.seed),
                    batch_size=spec.batch_size,
                    checkpoint_every=checkpoint_every,
                    checkpoint_path=path,
                    should_stop=should_stop,
                )
    finally:
        # Reclaim the eval_workers pool (when one was built): in serial
        # campaign mode or the post-pool-death fallback, shards run in
        # the submitting process, which would otherwise accumulate one
        # idle worker pool per shard.
        closer = getattr(search.evaluator, "close", None)
        if closer is not None:
            closer()
    return {
        "shard_id": spec.shard_id,
        "spec": spec.to_dict(),
        "result": search_result_to_dict(result),
        "resumed_from": resumed_from,
    }


def _check_snapshot_matches_spec(
    path: Path, spec: ShardSpec, trials: int
) -> dict[str, Any]:
    """Refuse to resume a checkpoint written under a different budget.

    The shard id (hence the checkpoint filename) does not encode the
    trial budget, so re-running a campaign with a changed ``trials``
    against an old checkpoint directory would otherwise silently return
    the *old* budget's result.  Returns the parsed snapshot so the
    caller can hand it to :meth:`~repro.core.search.Search.resume`
    without re-reading the file.
    """
    snapshot = json.loads(path.read_text())
    saved_trials = snapshot.get("trials_total")
    saved_batch = snapshot.get("batch_size")
    if saved_trials != trials or saved_batch != spec.batch_size:
        raise ValueError(
            f"checkpoint {path} was written for trials={saved_trials}, "
            f"batch_size={saved_batch} but shard {spec.shard_id!r} now "
            f"requests trials={trials}, batch_size={spec.batch_size}; "
            "point the campaign at a fresh checkpoint directory (or "
            "delete the stale snapshot) to change the budget"
        )
    return snapshot


@dataclass(frozen=True)
class ShardOutcome:
    """One finished shard: its spec, ledger, and how it got there.

    ``cached`` marks outcomes served from the result store instead of
    executed; it is in-memory provenance only -- campaign artifacts
    (:meth:`CampaignResult.to_dict`) never serialize it, so a merged
    result's bytes are identical whether its shards ran or were
    cached.
    """

    spec: ShardSpec
    result: SearchResult
    resumed_from: str | None = None
    requeues: int = 0
    cached: bool = False

    @classmethod
    def from_payload(
        cls, payload: dict[str, Any], requeues: int = 0,
        cached: bool = False,
    ) -> "ShardOutcome":
        """Decode a :func:`run_shard` payload."""
        return cls(
            spec=ShardSpec.from_dict(payload["spec"]),
            result=search_result_from_dict(payload["result"]),
            resumed_from=payload.get("resumed_from"),
            requeues=requeues,
            cached=cached,
        )
