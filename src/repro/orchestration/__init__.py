"""Search orchestration: checkpointable, sharded, resumable campaigns.

The layer that turns single search runs into durable fleets:

* checkpoint/resume itself lives on the search loops
  (:meth:`repro.core.search.Search.resume`) with its serialization
  substrate in :mod:`repro.core.serialization`;
* :mod:`repro.orchestration.shards` defines the unit of distribution --
  a :class:`ShardSpec` is a thin wrapper over a serialized single-search
  :class:`~repro.plans.RunPlan`, plain data from which any process can
  rebuild the exact search -- and the grid expansion
  (:func:`plan_shards` from a sweep plan's scenario, :func:`shard_grid`
  as its kwarg spelling);
* :mod:`repro.orchestration.campaign` fans shard grids across a process
  pool, re-queues shards whose workers die (resuming from their last
  checkpoints), and merges everything into a campaign-level result with
  an accuracy-latency Pareto frontier.

Exposed via the ``repro sweep`` CLI verb and any
:class:`~repro.plans.RunPlan` whose
:class:`~repro.plans.ExecutionPolicy` sets a checkpoint directory or
``shard_workers > 1``.
"""

from repro.orchestration.campaign import (
    Campaign,
    CampaignEvent,
    CampaignResult,
    merge_outcomes,
    run_campaign,
    save_campaign_result,
)
from repro.orchestration.shards import (
    FNAS_KIND,
    NAS_KIND,
    ShardOutcome,
    ShardSpec,
    build_search,
    plan_shards,
    run_shard,
    shard_grid,
)

__all__ = [
    "Campaign",
    "CampaignEvent",
    "CampaignResult",
    "FNAS_KIND",
    "NAS_KIND",
    "ShardOutcome",
    "ShardSpec",
    "build_search",
    "merge_outcomes",
    "plan_shards",
    "run_campaign",
    "run_shard",
    "save_campaign_result",
    "shard_grid",
]
