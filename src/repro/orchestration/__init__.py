"""Search orchestration: checkpointable, sharded, resumable campaigns.

The layer that turns single search runs into durable fleets:

* checkpoint/resume itself lives on the search loops
  (:meth:`repro.core.search.Search.resume`) with its serialization
  substrate in :mod:`repro.core.serialization`;
* :mod:`repro.orchestration.shards` defines the unit of distribution --
  a :class:`ShardSpec` is plain data from which any process can rebuild
  the exact search -- and the grid builder;
* :mod:`repro.orchestration.campaign` fans shard grids across a process
  pool, re-queues shards whose workers die (resuming from their last
  checkpoints), and merges everything into a campaign-level result with
  an accuracy-latency Pareto frontier.

Exposed via the ``repro sweep`` CLI verb and the
``campaign_dir`` / ``shard_workers`` parameters of
:func:`repro.experiments.runner.run_paired_search`.
"""

from repro.orchestration.campaign import (
    Campaign,
    CampaignEvent,
    CampaignResult,
    merge_outcomes,
    run_campaign,
    save_campaign_result,
)
from repro.orchestration.shards import (
    FNAS_KIND,
    NAS_KIND,
    ShardOutcome,
    ShardSpec,
    build_search,
    run_shard,
    shard_grid,
)

__all__ = [
    "Campaign",
    "CampaignEvent",
    "CampaignResult",
    "FNAS_KIND",
    "NAS_KIND",
    "ShardOutcome",
    "ShardSpec",
    "build_search",
    "merge_outcomes",
    "run_campaign",
    "run_shard",
    "save_campaign_result",
    "shard_grid",
]
