"""Schedulers (FNAS-Sched, fixed baseline) and the pipeline simulator."""

from repro.scheduling.base import (
    IFM_REUSE,
    IN_ORDER,
    OFM_REUSE,
    READY_QUEUE,
    Schedule,
    Scheduler,
)
from repro.scheduling.fixed_sched import FixedScheduler
from repro.scheduling.fnas_sched import (
    AdaptiveFnasScheduler,
    FnasScheduler,
    alternating_strategies,
    order_tasks,
)
from repro.scheduling.simulator import (
    CommunicationModel,
    PeTrace,
    PipelineSimulator,
    SimulationResult,
)
from repro.scheduling.visualize import gantt_chart, utilisation_table

__all__ = [
    "IFM_REUSE",
    "IN_ORDER",
    "OFM_REUSE",
    "READY_QUEUE",
    "Schedule",
    "Scheduler",
    "AdaptiveFnasScheduler",
    "FixedScheduler",
    "FnasScheduler",
    "alternating_strategies",
    "order_tasks",
    "CommunicationModel",
    "PeTrace",
    "PipelineSimulator",
    "SimulationResult",
    "gantt_chart",
    "utilisation_table",
]
