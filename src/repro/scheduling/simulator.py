"""Cycle-accurate event-driven simulation of the PE pipeline.

The simulator executes a :class:`~repro.scheduling.base.Schedule` over
its tile-based task graph and reports the makespan in clock cycles plus
per-PE start/stall accounting.  It is the measurement instrument behind
Figure 8 (FNAS-Sched vs fixed scheduling) and the oracle used to
validate the closed-form FNAS-Analyzer, which is a lower bound on the
simulated makespan.

Semantics:

* every layer ``i`` task occupies its PE for ``ET_i`` cycles (optionally
  inflated by the communication model when off-chip traffic exceeds the
  PE's bandwidth share);
* a task may start once the PE is free and its IFM data tile is ready;
* an OFM data tile completes when *all* tasks accumulating into it have
  finished; a downstream IFM tile becomes ready when all the OFM tiles
  it is assembled from are complete;
* layer-0 IFM tiles are ready at cycle 0;
* an ``"in-order"`` PE always waits for the next task in sequence; a
  ``"ready-queue"`` PE runs the earliest-startable remaining task,
  preferring sequence order on ties (the paper's P3 ready-to-run queue).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from repro.scheduling.base import IN_ORDER, READY_QUEUE, Schedule
from repro.taskgraph.tiles import IfmTile, OfmTile, Task

#: Sentinel for "readiness not yet known".
_UNKNOWN = -1


@dataclass
class CommunicationModel:
    """Optional off-chip traffic model.

    When enabled, a task whose fresh (non-reused) tile traffic cannot be
    streamed within its compute time is stretched to the transfer time:
    ``duration = max(ET, fresh_bytes / bytes_per_cycle)``.  Consecutive
    tasks on a PE reuse whichever buffer their schedule holds constant
    (the direct payoff of design principle P2).

    Attributes:
        bytes_per_cycle: per-PE off-chip bytes per cycle (the device
            bandwidth divided by the PEs sharing it).
    """

    bytes_per_cycle: float

    def __post_init__(self) -> None:
        if self.bytes_per_cycle <= 0:
            raise ValueError(
                f"bytes_per_cycle must be positive, got {self.bytes_per_cycle}"
            )

    def duration(self, schedule: Schedule, task: Task, prev: Task | None) -> int:
        """Effective cycles for ``task`` given the previous task on its PE."""
        design = schedule.graph.design.layers[task.layer]
        et = design.effective_execution_time
        bytes_needed = design.weight_buffer_bytes
        if prev is None or prev.input_tile != task.input_tile:
            bytes_needed += design.ifm_buffer_bytes
        if prev is None or prev.output_tile != task.output_tile:
            bytes_needed += design.ofm_buffer_bytes
        transfer = int(-(-bytes_needed // self.bytes_per_cycle))
        return max(et, transfer)


@dataclass
class PeTrace:
    """Execution record for one PE."""

    layer: int
    start_time: int
    finish_time: int
    busy_cycles: int
    executed: list[tuple[Task, int, int]] = field(default_factory=list)

    @property
    def stall_cycles(self) -> int:
        """Idle cycles between this PE's first start and last finish."""
        return (self.finish_time - self.start_time) - self.busy_cycles


@dataclass
class SimulationResult:
    """Outcome of simulating one schedule."""

    schedule_name: str
    makespan: int
    pe_traces: list[PeTrace]

    @property
    def total_stall_cycles(self) -> int:
        """Stall cycles summed over PEs."""
        return sum(trace.stall_cycles for trace in self.pe_traces)

    @property
    def start_times(self) -> list[int]:
        """First-task start time per PE."""
        return [trace.start_time for trace in self.pe_traces]


class PipelineSimulator:
    """Discrete-event simulator for PE pipelines.

    Parameters:
        comm_model: optional :class:`CommunicationModel`; ``None`` means
            ideal memory (task duration is pure compute ``ET``), which
            matches the analyzer's assumptions.
        record_trace: keep per-task (start, end) tuples in the traces
            (memory-heavy for big graphs; off by default).
    """

    def __init__(
        self,
        comm_model: CommunicationModel | None = None,
        record_trace: bool = False,
    ):
        self.comm_model = comm_model
        self.record_trace = record_trace

    def run(self, schedule: Schedule) -> SimulationResult:
        """Simulate ``schedule`` to completion and return the result."""
        graph = schedule.graph
        n_layers = graph.n_layers
        orders = schedule.layer_orders

        # Readiness bookkeeping ------------------------------------------------
        # ready_at[layer][seq]: cycle the task's IFM tile becomes ready.
        ready_at: list[list[int]] = [
            [_UNKNOWN] * len(order) for order in orders
        ]
        # Which (layer, seq) wait on each IFM tile.
        waiters: dict[IfmTile, list[tuple[int, int]]] = {}
        for layer_idx, order in enumerate(orders):
            for seq, task in enumerate(order):
                waiters.setdefault(task.input_tile, []).append((layer_idx, seq))

        # OFM tile completion: remaining producer counts.
        producers_left: dict[OfmTile, int] = {
            tile: len(tasks) for tile, tasks in graph.ofm_producers.items()
        }
        # Downstream IFM tiles assembled from each OFM tile.
        ofm_consumers: dict[OfmTile, list[IfmTile]] = {}
        sources_left: dict[IfmTile, int] = {}
        for ifm, sources in graph.ifm_sources.items():
            sources_left[ifm] = len(sources)
            for ofm in sources:
                ofm_consumers.setdefault(ofm, []).append(ifm)

        # Ready-queue heaps: rt_heap orders by readiness time, seq_heap by
        # sequence position once a task's readiness has matured.
        rt_heaps: list[list[tuple[int, int]]] = [[] for _ in range(n_layers)]
        seq_heaps: list[list[int]] = [[] for _ in range(n_layers)]

        def mark_ready(layer_idx: int, seq: int, time: int) -> None:
            ready_at[layer_idx][seq] = time
            heapq.heappush(rt_heaps[layer_idx], (time, seq))

        for tile in graph.input_tiles():
            for layer_idx, seq in waiters.get(tile, []):
                mark_ready(layer_idx, seq, 0)

        # PE state ------------------------------------------------------------
        pe_free = [0] * n_layers
        next_seq = [0] * n_layers  # in-order pointer
        done = [[False] * len(order) for order in orders]
        remaining = [len(order) for order in orders]
        prev_task: list[Task | None] = [None] * n_layers
        first_start = [_UNKNOWN] * n_layers
        last_end = [0] * n_layers
        busy = [0] * n_layers
        traces_exec: list[list[tuple[Task, int, int]]] = [
            [] for _ in range(n_layers)
        ]

        in_order = schedule.policy == IN_ORDER

        def candidate(layer_idx: int) -> tuple[int, int] | None:
            """Earliest (start_time, seq) this PE could run next, if known."""
            if remaining[layer_idx] == 0:
                return None
            if in_order:
                seq = next_seq[layer_idx]
                rt = ready_at[layer_idx][seq]
                if rt == _UNKNOWN:
                    return None
                return (max(pe_free[layer_idx], rt), seq)
            # ready-queue: mature entries whose readiness has passed pe_free.
            free = pe_free[layer_idx]
            rt_heap, seq_heap = rt_heaps[layer_idx], seq_heaps[layer_idx]
            while rt_heap and rt_heap[0][0] <= free:
                _, seq = heapq.heappop(rt_heap)
                heapq.heappush(seq_heap, seq)
            while seq_heap and done[layer_idx][seq_heap[0]]:
                heapq.heappop(seq_heap)
            if seq_heap:
                return (free, seq_heap[0])
            while rt_heap and done[layer_idx][rt_heap[0][1]]:
                heapq.heappop(rt_heap)
            if rt_heap:
                rt, seq = rt_heap[0]
                return (rt, seq)
            return None

        total_remaining = sum(remaining)
        while total_remaining > 0:
            best_layer, best_start, best_seq = -1, -1, -1
            for layer_idx in range(n_layers):
                cand = candidate(layer_idx)
                if cand is None:
                    continue
                start, seq = cand
                if best_layer == -1 or (start, layer_idx) < (best_start, best_layer):
                    best_layer, best_start, best_seq = layer_idx, start, seq
            if best_layer == -1:
                raise RuntimeError(
                    "deadlock: no PE has a ready task but "
                    f"{total_remaining} tasks remain -- the task graph or "
                    "schedule is inconsistent"
                )
            self._execute(
                schedule, best_layer, best_seq, best_start,
                orders, done, remaining, next_seq, pe_free, prev_task,
                first_start, last_end, busy, traces_exec,
                producers_left, ofm_consumers, sources_left, waiters,
                mark_ready,
            )
            total_remaining -= 1

        traces = []
        for layer_idx in range(n_layers):
            traces.append(
                PeTrace(
                    layer=layer_idx,
                    start_time=max(first_start[layer_idx], 0),
                    finish_time=last_end[layer_idx],
                    busy_cycles=busy[layer_idx],
                    executed=traces_exec[layer_idx],
                )
            )
        makespan = max(last_end) if last_end else 0
        return SimulationResult(
            schedule_name=schedule.name,
            makespan=makespan,
            pe_traces=traces,
        )

    def _execute(
        self, schedule, layer_idx, seq, start,
        orders, done, remaining, next_seq, pe_free, prev_task,
        first_start, last_end, busy, traces_exec,
        producers_left, ofm_consumers, sources_left, waiters,
        mark_ready,
    ) -> None:
        """Run one task and propagate tile readiness."""
        task = orders[layer_idx][seq]
        if self.comm_model is not None:
            duration = self.comm_model.duration(
                schedule, task, prev_task[layer_idx]
            )
        else:
            # Effective = max(load, compute, write) on DRAM-modeled
            # devices, pure compute ET on flat-bandwidth ones -- the
            # same quantity the closed-form analyzer uses, so the two
            # stay exact mirrors of each other on both memory models.
            duration = (
                schedule.graph.design.layers[layer_idx].effective_execution_time
            )
        end = start + duration

        done[layer_idx][seq] = True
        remaining[layer_idx] -= 1
        if schedule.policy == IN_ORDER:
            next_seq[layer_idx] += 1
        pe_free[layer_idx] = end
        prev_task[layer_idx] = task
        if first_start[layer_idx] == _UNKNOWN:
            first_start[layer_idx] = start
        last_end[layer_idx] = max(last_end[layer_idx], end)
        busy[layer_idx] += duration
        if self.record_trace:
            traces_exec[layer_idx].append((task, start, end))

        out_tile = task.output_tile
        producers_left[out_tile] -= 1
        if producers_left[out_tile] == 0:
            for ifm in ofm_consumers.get(out_tile, []):
                sources_left[ifm] -= 1
                if sources_left[ifm] == 0:
                    # This completion is by definition the latest source.
                    for waiter_layer, waiter_seq in waiters.get(ifm, []):
                        mark_ready(waiter_layer, waiter_seq, end)
