"""Schedule data model shared by all schedulers.

A *schedule* fixes, for every PE (one per conv layer), the intended
execution order of its tasks, the data-reuse strategy that order
realises, and the runtime policy used when the next task's input is not
yet ready:

* ``"in-order"``  -- the PE stalls until the next task in sequence is
  ready (the fixed-scheduling baseline of Zhang et al., FPGA'15);
* ``"ready-queue"`` -- the PE may run any later task whose inputs are
  ready, returning to sequence order afterwards (FNAS-Sched, design
  principle P3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

from repro.taskgraph.graph import TaskGraph
from repro.taskgraph.tiles import Task

#: Reuse strategy names (paper Section 3.5, Step 3).
OFM_REUSE = "ofm"
IFM_REUSE = "ifm"

#: Runtime stall policies.
IN_ORDER = "in-order"
READY_QUEUE = "ready-queue"


@dataclass
class Schedule:
    """Per-PE task orders plus the policy metadata the simulator needs.

    Attributes:
        graph: the task graph being scheduled.
        layer_orders: for each layer, its tasks in intended execution order.
        reuse_strategies: per layer, ``"ofm"`` or ``"ifm"``.
        policy: ``"in-order"`` or ``"ready-queue"``.
        name: label for reports/plots.
    """

    graph: TaskGraph
    layer_orders: list[list[Task]]
    reuse_strategies: list[str]
    policy: str
    name: str

    def __post_init__(self) -> None:
        if len(self.layer_orders) != self.graph.n_layers:
            raise ValueError(
                f"{len(self.layer_orders)} layer orders for "
                f"{self.graph.n_layers} layers"
            )
        if len(self.reuse_strategies) != self.graph.n_layers:
            raise ValueError(
                f"{len(self.reuse_strategies)} reuse strategies for "
                f"{self.graph.n_layers} layers"
            )
        for strategy in self.reuse_strategies:
            if strategy not in (OFM_REUSE, IFM_REUSE):
                raise ValueError(f"unknown reuse strategy {strategy!r}")
        if self.policy not in (IN_ORDER, READY_QUEUE):
            raise ValueError(f"unknown policy {self.policy!r}")
        for layer_idx, order in enumerate(self.layer_orders):
            expected = set(self.graph.tasks_by_layer[layer_idx])
            if set(order) != expected or len(order) != len(expected):
                raise ValueError(
                    f"layer {layer_idx} order is not a permutation of the "
                    f"layer's tasks"
                )

    def reuse_runs(self, layer: int) -> float:
        """Mean run length of consecutive same-reused-tile tasks in a layer.

        Diagnostic for P2 (data reuse): under OFM reuse the relevant
        tile is the output tile, under IFM reuse the input tile.  Longer
        runs mean less off-chip traffic.
        """
        order = self.layer_orders[layer]
        if not order:
            return 0.0
        strategy = self.reuse_strategies[layer]
        runs = 1
        for prev, cur in zip(order, order[1:]):
            if strategy == OFM_REUSE:
                same = (prev.ofm_tile, prev.rc_tile) == (cur.ofm_tile, cur.rc_tile)
            else:
                same = (prev.ifm_tile, prev.rc_tile) == (cur.ifm_tile, cur.rc_tile)
            if not same:
                runs += 1
        return len(order) / runs


class Scheduler(Protocol):
    """Anything that turns a task graph into a :class:`Schedule`."""

    def schedule(self, graph: TaskGraph) -> Schedule:
        """Produce a schedule for ``graph``."""
        ...
