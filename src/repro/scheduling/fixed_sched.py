"""Fixed scheduling baseline (Zhang et al., FPGA'15; paper Figure 5(a)).

The conventional PS/PL design streams tiles to every accelerator in the
*same* fixed nested-loop order::

    for (row; row += Tr)
      for (col; col += Tc)
        for (to;  to  += Tm)     # output channel tile
          for (ti; ti += Tn)     # input channel tile

i.e. order key ``(rc_tile, ofm_tile, ifm_tile)`` -- uniform OFM reuse on
every layer -- and the PE executes strictly in that order, stalling
whenever the next tile is not ready.  This is the baseline FNAS-Sched is
compared against in Figure 8.
"""

from __future__ import annotations

from repro.scheduling.base import IN_ORDER, OFM_REUSE, Schedule
from repro.scheduling.fnas_sched import order_tasks
from repro.taskgraph.graph import TaskGraph


class FixedScheduler:
    """The fixed-loop-order scheduler used by single-FPGA flows."""

    def schedule(self, graph: TaskGraph) -> Schedule:
        """Emit the fixed ``(row, col, to, ti)`` order for every layer."""
        strategies = [OFM_REUSE] * graph.n_layers
        orders = [
            order_tasks(tasks, OFM_REUSE) for tasks in graph.tasks_by_layer
        ]
        return Schedule(
            graph=graph,
            layer_orders=orders,
            reuse_strategies=strategies,
            policy=IN_ORDER,
            name="fixed-sched",
        )
