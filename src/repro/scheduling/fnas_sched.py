"""FNAS-Sched: the paper's three-step pipeline scheduler (Section 3.5).

Design principles:

* **P1** -- start every PE as early as possible,
* **P2** -- maximise on-chip data reuse,
* **P3** -- avoid pipeline stalls.

Steps, realised as per-layer task orderings:

1. *IFM tile sequence*: within a row/col tile, sweep the channel tiles
   first ("strategy i" in the paper) -- an OFM tile needs **all** input
   channels, so finishing one row/col tile's channels early lets the
   next layer start sooner than sweeping row/col tiles first.
2. *OFM tile sequence*: visit IFM tiles in their Step-1 order and emit
   the dependent OFM tiles as they become computable, so downstream
   readiness follows the downstream layer's own Step-1 order.
3. *Task sequence*: pick a reuse strategy per layer.  Under **OFM
   reuse** consecutive tasks share an output tile (iterate IFM tiles
   innermost: order key ``(rc, ofm, ifm)``); under **IFM reuse** they
   share an input tile (key ``(rc, ifm, ofm)``).  A uniform strategy
   starves consumers (an OFM-reuse producer feeding an OFM-reuse
   consumer delivers one input tile per ``|CH_ifm|`` tasks while the
   consumer wants one per task), so FNAS alternates the two strategies
   across consecutive layers, starting with OFM reuse at layer 0.

At runtime FNAS keeps a ready-to-run queue: when the next task in
sequence is blocked, any ready later task runs instead (P3).
"""

from __future__ import annotations

from repro.scheduling.base import (
    IFM_REUSE,
    IN_ORDER,
    OFM_REUSE,
    READY_QUEUE,
    Schedule,
)
from repro.taskgraph.graph import TaskGraph
from repro.taskgraph.tiles import Task


def order_tasks(tasks: list[Task], reuse: str) -> list[Task]:
    """Sort one layer's tasks for the given reuse strategy.

    ``"ofm"``: key ``(rc_tile, ofm_tile, ifm_tile)`` -- output tile held
    across the IFM sweep.  ``"ifm"``: key ``(rc_tile, ifm_tile,
    ofm_tile)`` -- input tile held across the OFM sweep.  Both keys keep
    the row/col tile outermost, which is Step 1's channel-first rule.
    """
    if reuse == OFM_REUSE:
        return sorted(tasks, key=lambda t: (t.rc_tile, t.ofm_tile, t.ifm_tile))
    if reuse == IFM_REUSE:
        return sorted(tasks, key=lambda t: (t.rc_tile, t.ifm_tile, t.ofm_tile))
    raise ValueError(f"unknown reuse strategy {reuse!r}")


def alternating_strategies(n_layers: int, first: str = OFM_REUSE) -> list[str]:
    """The paper's alternating reuse assignment, ``first`` at layer 0."""
    if first not in (OFM_REUSE, IFM_REUSE):
        raise ValueError(f"unknown reuse strategy {first!r}")
    other = IFM_REUSE if first == OFM_REUSE else OFM_REUSE
    return [first if i % 2 == 0 else other for i in range(n_layers)]


class FnasScheduler:
    """The FNAS-Sched scheduler.

    Parameters:
        first_reuse: reuse strategy of layer 0 (paper uses OFM reuse).
        uniform: if set to ``"ofm"`` or ``"ifm"``, apply that strategy
            to *every* layer instead of alternating -- the configuration
            the paper observes to cause stalls, kept for the ablation
            benchmark.
        policy: runtime stall policy; defaults to the paper's
            ready-to-run queue (P3).  ``"in-order"`` isolates the
            ordering contribution from the queue in ablations.
    """

    def __init__(
        self,
        first_reuse: str = OFM_REUSE,
        uniform: str | None = None,
        policy: str = READY_QUEUE,
    ):
        if first_reuse not in (OFM_REUSE, IFM_REUSE):
            raise ValueError(f"unknown reuse strategy {first_reuse!r}")
        if uniform is not None and uniform not in (OFM_REUSE, IFM_REUSE):
            raise ValueError(f"unknown uniform strategy {uniform!r}")
        if policy not in (READY_QUEUE, IN_ORDER):
            raise ValueError(f"unknown policy {policy!r}")
        self.first_reuse = first_reuse
        self.uniform = uniform
        self.policy = policy

    def schedule(self, graph: TaskGraph) -> Schedule:
        """Apply Steps 1-3 to every layer of ``graph``."""
        if self.uniform is not None:
            strategies = [self.uniform] * graph.n_layers
            name = f"fnas-uniform-{self.uniform}"
        else:
            strategies = alternating_strategies(graph.n_layers, self.first_reuse)
            name = "fnas-sched"
        orders = [
            order_tasks(tasks, strategy)
            for tasks, strategy in zip(graph.tasks_by_layer, strategies)
        ]
        if self.policy == IN_ORDER:
            name += "-inorder"
        return Schedule(
            graph=graph,
            layer_orders=orders,
            reuse_strategies=strategies,
            policy=self.policy,
            name=name,
        )


class AdaptiveFnasScheduler:
    """Pick the best FNAS-Sched variant per graph (extension).

    The paper fixes one alternation (OFM reuse first).  That is the
    right default, but no single strategy assignment is optimal for
    every pipeline -- on some shapes the IFM-reuse layers' larger start
    deltas outweigh the stalls they avoid.  This scheduler simulates a
    small candidate set (both alternation phases plus uniform OFM
    reuse, all with the ready-to-run queue) and returns the schedule
    with the smallest makespan.  Cost: one cycle simulation per
    candidate, so use it for final design selection rather than inside
    the search loop (where the closed-form analyzer belongs).
    """

    CANDIDATES = (
        dict(first_reuse=OFM_REUSE),
        dict(first_reuse=IFM_REUSE),
        dict(uniform=OFM_REUSE),
    )

    def schedule(self, graph: TaskGraph) -> Schedule:
        """Best-of-candidates schedule for ``graph``."""
        from repro.scheduling.simulator import PipelineSimulator

        simulator = PipelineSimulator()
        best: Schedule | None = None
        best_makespan = -1
        for kwargs in self.CANDIDATES:
            candidate = FnasScheduler(**kwargs).schedule(graph)
            makespan = simulator.run(candidate).makespan
            if best is None or makespan < best_makespan:
                best = candidate
                best_makespan = makespan
        assert best is not None
        return best
