"""Text visualisation of simulated schedules.

Renders a :class:`~repro.scheduling.simulator.SimulationResult` as an
ASCII Gantt chart (one row per PE) plus a utilisation table -- the
quickest way to *see* where a schedule loses cycles to late starts or
stalls, as used by ``examples/scheduler_study.py``.
"""

from __future__ import annotations

from repro.scheduling.simulator import SimulationResult


def gantt_chart(result: SimulationResult, width: int = 64) -> str:
    """ASCII Gantt chart of one simulation.

    Each PE's active span is drawn with ``#`` (dense busy) or ``=``
    (span containing stalls); idle time outside the span is ``.``.
    """
    if width < 8:
        raise ValueError(f"width must be >= 8, got {width}")
    makespan = max(result.makespan, 1)
    lines = []
    for trace in result.pe_traces:
        row = ["."] * width
        lo = int(trace.start_time / makespan * width)
        hi = max(lo + 1, round(trace.finish_time / makespan * width))
        span = max(trace.finish_time - trace.start_time, 1)
        busy_share = trace.busy_cycles / span
        fill = "#" if busy_share > 0.999 else "="
        for i in range(lo, min(hi, width)):
            row[i] = fill
        lines.append(f"PE{trace.layer:<2} |{''.join(row)}|")
    return "\n".join(lines)


def utilisation_table(result: SimulationResult) -> str:
    """Per-PE start / finish / busy / stall summary."""
    header = (f"{'PE':<4}{'start':>10}{'finish':>10}{'busy':>10}"
              f"{'stall':>8}{'util':>7}")
    lines = [header, "-" * len(header)]
    for trace in result.pe_traces:
        span = max(trace.finish_time - trace.start_time, 1)
        util = trace.busy_cycles / span
        lines.append(
            f"PE{trace.layer:<2} {trace.start_time:>9} "
            f"{trace.finish_time:>9} {trace.busy_cycles:>9} "
            f"{trace.stall_cycles:>7} {100 * util:>5.1f}%"
        )
    lines.append(
        f"makespan {result.makespan} cycles, "
        f"total stalls {result.total_stall_cycles}"
    )
    return "\n".join(lines)
