"""Search-cost model: simulated wall-clock of the search process.

The paper's Table 1 "Elapsed" column measures how long the whole search
takes; FNAS wins by (1) skipping training for spec-violating children
and (2) the surviving children being smaller and cheaper to train.  To
reproduce those numbers without a GPU farm, each trial is charged a
simulated cost::

    train_seconds = OVERHEAD + kappa * epochs * train_size * MACs
    latency_eval_seconds = 0.5          (the FNAS tool is cheap)

The calibration is anchored on Table 1's MNIST row: NAS took 190m33s
for 60 trials, i.e. ~190.5 s per child.  Of that, a fixed 25% is
charged as per-trial overhead (child construction, data pipeline,
per-epoch fixed costs -- the part of GPU training that does not scale
with model size), and the MAC-proportional remainder is normalised so
that a *converged* accuracy-seeking NAS -- which samples near the top of
the space -- averages the paper's per-trial cost.  The reference
workload for that anchor is 70% of the MNIST space's largest
architecture.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.architecture import Architecture
from repro.core.search_space import SearchSpace
from repro.configs import ExperimentConfig, get_config

#: Table 1: NAS on MNIST took 190m33s for 60 trials.
MNIST_NAS_TOTAL_SECONDS = 190 * 60 + 33
MNIST_TRIALS = 60

_PER_TRIAL_SECONDS = MNIST_NAS_TOTAL_SECONDS / MNIST_TRIALS

#: Fixed per-trial overhead: the size-independent quarter of a trial.
TRIAL_OVERHEAD_SECONDS = 0.25 * _PER_TRIAL_SECONDS

#: Cost of one FNAS-tool latency evaluation (design + closed-form model).
LATENCY_EVAL_SECONDS = 0.5

#: A converged NAS samples near the top of the space; anchor the MAC-
#: proportional cost on this fraction of the largest architecture.
_REFERENCE_WORK_FRACTION = 0.7


def _max_space_work(space: SearchSpace, config: ExperimentConfig) -> float:
    """epochs x examples x MACs of the space's largest architecture."""
    largest = space.decode(
        [len(space.choices_at(s)) - 1 for s in range(space.num_decisions)]
    )
    return float(config.epochs) * config.train_size * largest.total_macs


def _calibrate_kappa() -> float:
    """Seconds per (epoch x example x MAC), anchored on Table 1's MNIST row."""
    config = get_config("mnist")
    space = SearchSpace.from_config(config)
    reference_work = _REFERENCE_WORK_FRACTION * _max_space_work(space, config)
    mac_share = _PER_TRIAL_SECONDS - TRIAL_OVERHEAD_SECONDS
    return mac_share / reference_work


@dataclass
class SearchCostModel:
    """Charges simulated seconds to the search ledger.

    Attributes:
        config: the dataset's Table 2 row (epochs, train size).
        kappa: seconds per epoch-example-MAC; ``None`` uses the
            Table 1-anchored calibration.
    """

    config: ExperimentConfig
    kappa: float | None = None

    def __post_init__(self) -> None:
        if self.kappa is None:
            self.kappa = _calibrate_kappa()
        if self.kappa <= 0:
            raise ValueError(f"kappa must be positive, got {self.kappa}")

    def train_seconds(self, architecture: Architecture) -> float:
        """Simulated cost of training one child network."""
        work = (self.config.epochs * self.config.train_size
                * architecture.total_macs)
        return TRIAL_OVERHEAD_SECONDS + self.kappa * work

    def latency_eval_seconds(self) -> float:
        """Simulated cost of one FNAS-tool latency estimate."""
        return LATENCY_EVAL_SECONDS
