"""Calibrated accuracy landscape and search-cost models."""

from repro.surrogate.accuracy_model import (
    CALIBRATIONS,
    SurrogateAccuracyModel,
    SurrogateCalibration,
)
from repro.surrogate.cost_model import (
    LATENCY_EVAL_SECONDS,
    MNIST_NAS_TOTAL_SECONDS,
    TRIAL_OVERHEAD_SECONDS,
    SearchCostModel,
)

__all__ = [
    "CALIBRATIONS",
    "SurrogateAccuracyModel",
    "SurrogateCalibration",
    "LATENCY_EVAL_SECONDS",
    "MNIST_NAS_TOTAL_SECONDS",
    "TRIAL_OVERHEAD_SECONDS",
    "SearchCostModel",
]
