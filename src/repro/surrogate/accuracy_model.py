"""Calibrated accuracy surrogate for fast search experiments.

Training 60 child networks x 25 epochs per search (x several searches
per figure) is a GPU-days workload in the paper.  The benchmark harness
replaces the training step with a deterministic *accuracy landscape*
that preserves the two properties the FNAS experiments rely on:

1. accuracy grows with model capacity (log-MACs) with diminishing
   returns -- so the unconstrained NAS gravitates to big, slow networks,
   while latency-constrained FNAS gives up a little accuracy;
2. the spread between the smallest and largest architecture in a search
   space is small (about a point) -- the paper's Figure 7(a) shows
   sub-1% accuracy losses even under the tightest specs.

Calibration anchors per dataset (floor/ceiling) come from the paper's
reported numbers where available (MNIST: NAS reaches 99.42%, the
tightest-spec FNAS 98.61%) and from typical 25-epoch training bands
otherwise.  Per-architecture reproducible noise (hashed fingerprint)
adds the jaggedness of real training outcomes.

The real-training path (``repro.core.evaluator.TrainedAccuracyEvaluator``)
exercises the same interface with actual NumPy training; the surrogate
is the paper-scale stand-in, not the only path.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass

import numpy as np

from repro.core.architecture import Architecture
from repro.core.search_space import SearchSpace


@dataclass(frozen=True)
class SurrogateCalibration:
    """Accuracy landscape anchors for one dataset."""

    floor: float
    ceiling: float
    noise_sigma: float
    curve_power: float = 0.6

    def __post_init__(self) -> None:
        if not 0.0 < self.floor < self.ceiling <= 1.0:
            raise ValueError(
                f"need 0 < floor < ceiling <= 1, got "
                f"{self.floor}/{self.ceiling}"
            )
        if self.noise_sigma < 0:
            raise ValueError(f"noise_sigma must be >= 0, got {self.noise_sigma}")
        if self.curve_power <= 0:
            raise ValueError(f"curve_power must be positive, got {self.curve_power}")


#: Per-dataset anchors.  MNIST endpoints reproduce Table 1 (99.42% for
#: the biggest nets, ~98.6% at the small end); CIFAR/ImageNet use a
#: comparable ~1.2-1.3 point spread, which is what keeps Figure 7(a)'s
#: losses below 1%.
CALIBRATIONS: dict[str, SurrogateCalibration] = {
    "mnist": SurrogateCalibration(floor=0.9825, ceiling=0.9945,
                                  noise_sigma=0.0005),
    "cifar10": SurrogateCalibration(floor=0.9050, ceiling=0.9180,
                                    noise_sigma=0.0010),
    "imagenet": SurrogateCalibration(floor=0.6950, ceiling=0.7080,
                                     noise_sigma=0.0015),
    # MobileNet-class space: same ~1.3-point spread as the ImageNet row,
    # anchored a notch higher (separable nets trade MACs, not ceiling).
    "mobilenet": SurrogateCalibration(floor=0.7050, ceiling=0.7180,
                                      noise_sigma=0.0015),
}


def _fingerprint_noise(fingerprint: str, seed: int, sigma: float) -> float:
    """Reproducible N(0, sigma) noise keyed by architecture + seed."""
    if sigma == 0.0:
        return 0.0
    digest = hashlib.sha256(f"{fingerprint}|{seed}".encode()).digest()
    raw = int.from_bytes(digest[:8], "little")
    rng = np.random.default_rng(raw)
    return float(rng.normal(0.0, sigma))


class SurrogateAccuracyModel:
    """Deterministic accuracy landscape over one search space.

    Parameters:
        space: the search space (bounds the MAC range used for the
            log-capacity normalisation).
        calibration: anchors; defaults to the entry for ``space.name``.
        seed: varies the per-architecture noise draw (a different seed
            simulates a different training run).
    """

    def __init__(
        self,
        space: SearchSpace,
        calibration: SurrogateCalibration | None = None,
        seed: int = 0,
    ):
        if calibration is None:
            try:
                calibration = CALIBRATIONS[space.name]
            except KeyError:
                known = ", ".join(sorted(CALIBRATIONS))
                raise KeyError(
                    f"no calibration for space {space.name!r} "
                    f"(known: {known}); pass one explicitly"
                )
        self.space = space
        self.calibration = calibration
        self.seed = seed
        self._log_min, self._log_max = self._mac_bounds(space)

    @staticmethod
    def _mac_bounds(space: SearchSpace) -> tuple[float, float]:
        """log-MAC range spanned by the space's extreme architectures.

        MACs are monotone in every per-layer choice, so the min/max
        architectures are the all-smallest / all-largest selections.
        """
        n = space.num_decisions
        smallest = space.decode([0] * n)
        largest = space.decode(
            [len(space.choices_at(s)) - 1 for s in range(n)]
        )
        lo, hi = smallest.total_macs, largest.total_macs
        if lo >= hi:
            raise ValueError(
                "degenerate search space: min and max architectures have "
                f"the same MAC count ({lo})"
            )
        return math.log(lo), math.log(hi)

    def capacity(self, architecture: Architecture) -> float:
        """Normalised log-capacity in [0, 1] within the space's MAC range."""
        log_macs = math.log(max(architecture.total_macs, 1))
        x = (log_macs - self._log_min) / (self._log_max - self._log_min)
        return min(1.0, max(0.0, x))

    def accuracy(self, architecture: Architecture) -> float:
        """Simulated validation accuracy of ``architecture``."""
        cal = self.calibration
        x = self.capacity(architecture)
        base = cal.floor + (cal.ceiling - cal.floor) * x**cal.curve_power
        noise = _fingerprint_noise(
            architecture.fingerprint(), self.seed, cal.noise_sigma
        )
        return min(1.0, max(0.0, base + noise))
