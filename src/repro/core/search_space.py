"""The NAS search space: per-layer hyperparameter choice lists.

Following the paper (and Zoph's NAS it builds on), the controller makes
two decisions per layer -- the filter size and the number of filters --
from fixed choice lists (Table 2).  A :class:`SearchSpace` owns those
lists and converts between controller *token sequences* (one choice
index per decision) and concrete
:class:`~repro.core.architecture.Architecture` objects.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.core.architecture import Architecture
from repro.configs import ExperimentConfig

#: Decision kinds, in per-layer order.
FILTER_SIZE = "filter_size"
FILTER_COUNT = "filter_count"
DECISIONS_PER_LAYER = 2


@dataclass(frozen=True)
class SearchSpace:
    """A layered CNN search space with per-layer (FS, FN) choices."""

    name: str
    num_layers: int
    filter_sizes: tuple[int, ...]
    filter_counts: tuple[int, ...]
    input_size: int
    input_channels: int
    num_classes: int

    def __post_init__(self) -> None:
        if self.num_layers <= 0:
            raise ValueError(f"num_layers must be positive, got {self.num_layers}")
        if not self.filter_sizes or not self.filter_counts:
            raise ValueError("choice lists cannot be empty")
        if len(set(self.filter_sizes)) != len(self.filter_sizes):
            raise ValueError("filter_sizes contains duplicates")
        if len(set(self.filter_counts)) != len(self.filter_counts):
            raise ValueError("filter_counts contains duplicates")

    @classmethod
    def from_config(cls, config: ExperimentConfig) -> "SearchSpace":
        """Build the space described by a Table 2 row."""
        return cls(
            name=config.dataset,
            num_layers=config.num_layers,
            filter_sizes=tuple(config.filter_sizes),
            filter_counts=tuple(config.filter_counts),
            input_size=config.input_size,
            input_channels=config.input_channels,
            num_classes=config.num_classes,
        )

    # -- token geometry -----------------------------------------------------

    @property
    def num_decisions(self) -> int:
        """Length of a full token sequence (2 per layer)."""
        return self.num_layers * DECISIONS_PER_LAYER

    def decision_kind(self, step: int) -> str:
        """Which hyperparameter the ``step``-th token selects."""
        if not 0 <= step < self.num_decisions:
            raise ValueError(f"step {step} out of range [0, {self.num_decisions})")
        return FILTER_SIZE if step % DECISIONS_PER_LAYER == 0 else FILTER_COUNT

    def choices_at(self, step: int) -> tuple[int, ...]:
        """The choice list the ``step``-th token indexes into."""
        if self.decision_kind(step) == FILTER_SIZE:
            return self.filter_sizes
        return self.filter_counts

    @property
    def size(self) -> int:
        """Number of distinct token sequences."""
        return (len(self.filter_sizes) * len(self.filter_counts)) ** self.num_layers

    # -- encode / decode ------------------------------------------------------

    def decode(self, tokens: list[int] | tuple[int, ...]) -> Architecture:
        """Token sequence -> architecture.

        ``tokens[2i]`` indexes ``filter_sizes`` and ``tokens[2i+1]``
        indexes ``filter_counts`` for layer ``i``.
        """
        if len(tokens) != self.num_decisions:
            raise ValueError(
                f"expected {self.num_decisions} tokens, got {len(tokens)}"
            )
        sizes, counts = [], []
        for step, token in enumerate(tokens):
            choices = self.choices_at(step)
            if not 0 <= token < len(choices):
                raise ValueError(
                    f"token {token} at step {step} out of range for "
                    f"{len(choices)} choices"
                )
            if self.decision_kind(step) == FILTER_SIZE:
                sizes.append(choices[token])
            else:
                counts.append(choices[token])
        return Architecture.from_choices(
            filter_sizes=sizes,
            filter_counts=counts,
            input_size=self.input_size,
            input_channels=self.input_channels,
            num_classes=self.num_classes,
        )

    def encode(self, architecture: Architecture) -> list[int]:
        """Architecture -> token sequence (inverse of :meth:`decode`).

        Kernel sizes clamped by :meth:`Architecture.from_choices` are
        mapped back to the smallest choice >= the clamped kernel.
        """
        if architecture.depth != self.num_layers:
            raise ValueError(
                f"architecture depth {architecture.depth} != space layers "
                f"{self.num_layers}"
            )
        tokens: list[int] = []
        for layer in architecture.layers:
            kernel = layer.kernel
            if kernel in self.filter_sizes:
                fs_idx = self.filter_sizes.index(kernel)
            else:
                bigger = [s for s in self.filter_sizes if s >= kernel]
                if not bigger:
                    raise ValueError(
                        f"kernel {kernel} not representable in {self.filter_sizes}"
                    )
                fs_idx = self.filter_sizes.index(min(bigger))
            if layer.out_channels not in self.filter_counts:
                raise ValueError(
                    f"filter count {layer.out_channels} not in "
                    f"{self.filter_counts}"
                )
            tokens.append(fs_idx)
            tokens.append(self.filter_counts.index(layer.out_channels))
        return tokens

    # -- sampling / enumeration ----------------------------------------------

    def random_tokens(self, rng: np.random.Generator) -> list[int]:
        """A uniformly random token sequence."""
        return [
            int(rng.integers(0, len(self.choices_at(step))))
            for step in range(self.num_decisions)
        ]

    def random_architecture(self, rng: np.random.Generator) -> Architecture:
        """A uniformly random architecture."""
        return self.decode(self.random_tokens(rng))

    def enumerate_architectures(self) -> Iterator[Architecture]:
        """Yield every architecture in the space (use only for small spaces)."""
        per_step = [range(len(self.choices_at(s))) for s in range(self.num_decisions)]
        for tokens in itertools.product(*per_step):
            yield self.decode(list(tokens))
