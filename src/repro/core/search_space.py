"""The NAS search space: per-layer hyperparameter choice lists.

Following the paper (and Zoph's NAS it builds on), the controller makes
two decisions per layer -- the filter size and the number of filters --
from fixed choice lists (Table 2).  A :class:`SearchSpace` owns those
lists and converts between controller *token sequences* (one choice
index per decision) and concrete
:class:`~repro.core.architecture.Architecture` objects.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.core.architecture import Architecture
from repro.configs import ExperimentConfig

#: Decision kinds, in per-layer order (``CONV_TYPE`` only present in
#: spaces with more than one conv type).
CONV_TYPE = "conv_type"
FILTER_SIZE = "filter_size"
FILTER_COUNT = "filter_count"
DECISIONS_PER_LAYER = 2

#: Conv-type choices a space may offer.  Ordered cheapest-first so the
#: surrogate's MAC-monotonicity probe (all-zeros vs all-max tokens)
#: stays valid for spaces that include both.
KNOWN_CONV_TYPES = ("separable", "standard")


@dataclass(frozen=True)
class SearchSpace:
    """A layered CNN search space with per-layer (FS, FN) choices.

    MobileNet-class spaces additionally choose each layer's conv *type*
    (``"standard"`` vs ``"separable"``); the extra decision appears only
    when ``conv_types`` offers more than one option, so classic
    two-decision spaces keep their exact token geometry.
    """

    name: str
    num_layers: int
    filter_sizes: tuple[int, ...]
    filter_counts: tuple[int, ...]
    input_size: int
    input_channels: int
    num_classes: int
    conv_types: tuple[str, ...] = ("standard",)

    def __post_init__(self) -> None:
        if self.num_layers <= 0:
            raise ValueError(f"num_layers must be positive, got {self.num_layers}")
        if not self.filter_sizes or not self.filter_counts:
            raise ValueError("choice lists cannot be empty")
        if len(set(self.filter_sizes)) != len(self.filter_sizes):
            raise ValueError("filter_sizes contains duplicates")
        if len(set(self.filter_counts)) != len(self.filter_counts):
            raise ValueError("filter_counts contains duplicates")
        if not self.conv_types:
            raise ValueError("conv_types cannot be empty")
        if len(set(self.conv_types)) != len(self.conv_types):
            raise ValueError("conv_types contains duplicates")
        for conv_type in self.conv_types:
            if conv_type not in KNOWN_CONV_TYPES:
                raise ValueError(
                    f"unknown conv type {conv_type!r}; "
                    f"known: {', '.join(KNOWN_CONV_TYPES)}"
                )

    @classmethod
    def from_config(cls, config: ExperimentConfig) -> "SearchSpace":
        """Build the space described by a Table 2 row."""
        return cls(
            name=config.dataset,
            num_layers=config.num_layers,
            filter_sizes=tuple(config.filter_sizes),
            filter_counts=tuple(config.filter_counts),
            input_size=config.input_size,
            input_channels=config.input_channels,
            num_classes=config.num_classes,
            conv_types=tuple(getattr(config, "conv_types", ("standard",))),
        )

    # -- token geometry -----------------------------------------------------

    @property
    def searches_conv_type(self) -> bool:
        """True when the controller picks each layer's conv type."""
        return len(self.conv_types) > 1

    @property
    def decisions_per_layer(self) -> int:
        """Tokens per layer: 2 classically, 3 with a conv-type choice."""
        return 3 if self.searches_conv_type else DECISIONS_PER_LAYER

    @property
    def kinds_per_layer(self) -> tuple[str, ...]:
        """Decision kinds in per-layer token order."""
        if self.searches_conv_type:
            return (CONV_TYPE, FILTER_SIZE, FILTER_COUNT)
        return (FILTER_SIZE, FILTER_COUNT)

    @property
    def num_decisions(self) -> int:
        """Length of a full token sequence."""
        return self.num_layers * self.decisions_per_layer

    def decision_kind(self, step: int) -> str:
        """Which hyperparameter the ``step``-th token selects."""
        if not 0 <= step < self.num_decisions:
            raise ValueError(f"step {step} out of range [0, {self.num_decisions})")
        return self.kinds_per_layer[step % self.decisions_per_layer]

    def choices(self, kind: str) -> tuple:
        """The choice list for a decision ``kind``."""
        table = {
            CONV_TYPE: self.conv_types,
            FILTER_SIZE: self.filter_sizes,
            FILTER_COUNT: self.filter_counts,
        }
        try:
            return table[kind]
        except KeyError:
            raise KeyError(f"unknown decision kind {kind!r}") from None

    def choices_at(self, step: int) -> tuple:
        """The choice list the ``step``-th token indexes into."""
        return self.choices(self.decision_kind(step))

    @property
    def size(self) -> int:
        """Number of distinct token sequences."""
        per_layer = len(self.filter_sizes) * len(self.filter_counts)
        if self.searches_conv_type:
            per_layer *= len(self.conv_types)
        return per_layer ** self.num_layers

    # -- encode / decode ------------------------------------------------------

    def decode(self, tokens: list[int] | tuple[int, ...]) -> Architecture:
        """Token sequence -> architecture.

        Classically ``tokens[2i]`` indexes ``filter_sizes`` and
        ``tokens[2i+1]`` indexes ``filter_counts`` for layer ``i``;
        conv-type-searching spaces prepend a ``conv_types`` token per
        layer.  A ``"separable"`` choice expands into a depthwise +
        pointwise layer pair, so the architecture may be deeper than
        ``num_layers``.
        """
        if len(tokens) != self.num_decisions:
            raise ValueError(
                f"expected {self.num_decisions} tokens, got {len(tokens)}"
            )
        types, sizes, counts = [], [], []
        for step, token in enumerate(tokens):
            choices = self.choices_at(step)
            if not 0 <= token < len(choices):
                raise ValueError(
                    f"token {token} at step {step} out of range for "
                    f"{len(choices)} choices"
                )
            kind = self.decision_kind(step)
            if kind == CONV_TYPE:
                types.append(choices[token])
            elif kind == FILTER_SIZE:
                sizes.append(choices[token])
            else:
                counts.append(choices[token])
        if not types and self.conv_types != ("standard",):
            # A single non-standard conv type is fixed, not searched:
            # no token carries it, but every layer still uses it.
            types = [self.conv_types[0]] * len(sizes)
        return Architecture.from_choices(
            filter_sizes=sizes,
            filter_counts=counts,
            input_size=self.input_size,
            input_channels=self.input_channels,
            num_classes=self.num_classes,
            conv_types=types if types else None,
        )

    def _logical_layers(
        self, architecture: Architecture
    ) -> list[tuple[str, int, int]]:
        """Collapse expanded layers back into ``(type, kernel, count)``.

        A depthwise layer immediately followed by its 1x1 pointwise
        projection reads back as one ``"separable"`` decision; anything
        else is a ``"standard"`` layer.
        """
        logical: list[tuple[str, int, int]] = []
        layers = architecture.layers
        i = 0
        while i < len(layers):
            layer = layers[i]
            if layer.is_depthwise:
                if i + 1 >= len(layers):
                    raise ValueError(
                        "trailing depthwise layer has no pointwise projection"
                    )
                pointwise = layers[i + 1]
                if pointwise.is_depthwise or pointwise.kernel != 1:
                    raise ValueError(
                        f"layer {i + 1} is not the 1x1 pointwise projection "
                        f"of the depthwise layer {i}"
                    )
                logical.append(
                    ("separable", layer.kernel, pointwise.out_channels)
                )
                i += 2
            else:
                logical.append(("standard", layer.kernel, layer.out_channels))
                i += 1
        return logical

    def encode(self, architecture: Architecture) -> list[int]:
        """Architecture -> token sequence (inverse of :meth:`decode`).

        Kernel sizes clamped by :meth:`Architecture.from_choices` are
        mapped back to the smallest choice >= the clamped kernel.
        Depthwise + pointwise pairs read back as one ``"separable"``
        decision.
        """
        logical = self._logical_layers(architecture)
        if len(logical) != self.num_layers:
            raise ValueError(
                f"architecture logical depth {len(logical)} != space layers "
                f"{self.num_layers}"
            )
        tokens: list[int] = []
        for conv_type, kernel, count in logical:
            if self.searches_conv_type:
                tokens.append(self.conv_types.index(conv_type))
            elif conv_type not in self.conv_types:
                raise ValueError(
                    f"conv type {conv_type!r} not in {self.conv_types}"
                )
            if kernel in self.filter_sizes:
                fs_idx = self.filter_sizes.index(kernel)
            else:
                bigger = [s for s in self.filter_sizes if s >= kernel]
                if not bigger:
                    raise ValueError(
                        f"kernel {kernel} not representable in {self.filter_sizes}"
                    )
                fs_idx = self.filter_sizes.index(min(bigger))
            if count not in self.filter_counts:
                raise ValueError(
                    f"filter count {count} not in {self.filter_counts}"
                )
            tokens.append(fs_idx)
            tokens.append(self.filter_counts.index(count))
        return tokens

    # -- sampling / enumeration ----------------------------------------------

    def random_tokens(self, rng: np.random.Generator) -> list[int]:
        """A uniformly random token sequence."""
        return [
            int(rng.integers(0, len(self.choices_at(step))))
            for step in range(self.num_decisions)
        ]

    def random_architecture(self, rng: np.random.Generator) -> Architecture:
        """A uniformly random architecture."""
        return self.decode(self.random_tokens(rng))

    def enumerate_architectures(self) -> Iterator[Architecture]:
        """Yield every architecture in the space (use only for small spaces)."""
        per_step = [range(len(self.choices_at(s))) for s in range(self.num_decisions)]
        for tokens in itertools.product(*per_step):
            yield self.decode(list(tokens))
