"""Accuracy evaluators: how a child network's accuracy ``A`` is obtained.

Two interchangeable implementations behind one protocol:

* :class:`TrainedAccuracyEvaluator` -- actually trains the child with
  the NumPy substrate on a (synthetic) dataset; the honest path, used
  in examples and integration tests.
* :class:`SurrogateAccuracyEvaluator` -- the calibrated landscape of
  ``repro.surrogate``; the paper-scale path used by the benchmark
  harness, with simulated search-time costs anchored on Table 1.

Batches are scored through :func:`evaluate_many`, which uses an
evaluator's ``evaluate_batch`` when it has one and falls back to a
serial loop otherwise; :class:`ParallelEvaluator` wraps any evaluator
with an ``evaluate_batch`` that fans across a process pool, turning the
independent child trainings of one search batch into parallel work.
"""

from __future__ import annotations

import time
import warnings
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Protocol, Sequence

import numpy as np

from repro.core.architecture import Architecture
from repro.core.search_space import SearchSpace
from repro.datasets.base import Dataset
from repro.configs import ExperimentConfig, get_config
from repro.nn.builder import build_network
from repro.nn.trainer import Trainer
from repro.surrogate.accuracy_model import (
    SurrogateAccuracyModel,
    SurrogateCalibration,
)
from repro.surrogate.cost_model import SearchCostModel


@dataclass(frozen=True)
class EvaluationOutcome:
    """Accuracy of one trained child plus what the training cost."""

    accuracy: float
    train_seconds: float


class AccuracyEvaluator(Protocol):
    """Anything that can score a child network."""

    def evaluate(self, architecture: Architecture) -> EvaluationOutcome:
        """Train (or simulate training) and return the reward accuracy."""
        ...

    def latency_eval_seconds(self) -> float:
        """Cost charged for one FNAS-tool latency estimate."""
        ...


def evaluate_many(
    evaluator: AccuracyEvaluator, architectures: Sequence[Architecture]
) -> list[EvaluationOutcome]:
    """Score a batch, via ``evaluate_batch`` when the evaluator has one.

    The search loops call this so that any evaluator -- including
    third-party ones implementing only the single-candidate protocol --
    works on the batched path.
    """
    batch_fn = getattr(evaluator, "evaluate_batch", None)
    if batch_fn is not None:
        return batch_fn(architectures)
    return [evaluator.evaluate(a) for a in architectures]


class SurrogateAccuracyEvaluator:
    """Surrogate landscape + Table 1-anchored cost model."""

    def __init__(
        self,
        space: SearchSpace,
        config: ExperimentConfig | None = None,
        calibration: SurrogateCalibration | None = None,
        seed: int = 0,
    ):
        self.space = space
        self.config = config if config is not None else get_config(space.name)
        self.model = SurrogateAccuracyModel(
            space, calibration=calibration, seed=seed
        )
        self.cost_model = SearchCostModel(self.config)

    def evaluate(self, architecture: Architecture) -> EvaluationOutcome:
        """Simulated accuracy + simulated training cost."""
        return EvaluationOutcome(
            accuracy=self.model.accuracy(architecture),
            train_seconds=self.cost_model.train_seconds(architecture),
        )

    def latency_eval_seconds(self) -> float:
        """Simulated FNAS-tool cost per estimate."""
        return self.cost_model.latency_eval_seconds()


class TrainedAccuracyEvaluator:
    """Real NumPy training on a dataset; costs are measured wall time."""

    #: Wall cost of one analytical latency estimate (measured, tiny).
    LATENCY_EVAL_SECONDS = 0.05

    def __init__(
        self,
        dataset: Dataset,
        trainer: Trainer | None = None,
        init_seed: int = 0,
    ):
        self.dataset = dataset
        self.trainer = trainer if trainer is not None else Trainer(
            epochs=5, lr=0.02
        )
        self.init_seed = init_seed

    def evaluate(self, architecture: Architecture) -> EvaluationOutcome:
        """Build, train, and score one child network."""
        if architecture.input_size != self.dataset.input_size:
            raise ValueError(
                f"architecture expects {architecture.input_size}px inputs, "
                f"dataset provides {self.dataset.input_size}px"
            )
        if architecture.input_channels != self.dataset.input_channels:
            raise ValueError(
                f"architecture expects {architecture.input_channels} "
                f"channels, dataset provides {self.dataset.input_channels}"
            )
        started = time.perf_counter()
        network = build_network(
            architecture, rng=np.random.default_rng(self.init_seed)
        )
        result = self.trainer.train(
            network,
            self.dataset.train_x,
            self.dataset.train_y,
            self.dataset.val_x,
            self.dataset.val_y,
        )
        return EvaluationOutcome(
            accuracy=result.best_accuracy,
            train_seconds=time.perf_counter() - started,
        )

    def latency_eval_seconds(self) -> float:
        """Nominal analytical-model cost."""
        return self.LATENCY_EVAL_SECONDS


# -- process-pool fan-out ----------------------------------------------------

#: Per-process evaluator installed by the pool initializer, so the
#: (potentially large) evaluator is pickled once per worker instead of
#: once per task.
_WORKER_EVALUATOR: AccuracyEvaluator | None = None


def _init_worker(evaluator: AccuracyEvaluator) -> None:
    global _WORKER_EVALUATOR
    _WORKER_EVALUATOR = evaluator


def _worker_evaluate(architecture: Architecture) -> EvaluationOutcome:
    assert _WORKER_EVALUATOR is not None, "pool worker not initialised"
    return _WORKER_EVALUATOR.evaluate(architecture)


class ParallelEvaluator:
    """Fans ``evaluate_batch`` across a process pool.

    Wraps any picklable :class:`AccuracyEvaluator`.  Child evaluations
    within one search batch are independent, so spec-meeting candidates
    can train concurrently; single-candidate ``evaluate`` calls stay
    in-process.  With ``max_workers <= 1``, or if the platform cannot
    spawn worker processes (or a pool dies mid-run), evaluation
    degrades to the serial path -- results are identical either way
    because the wrapped evaluators are deterministic per architecture.
    Exceptions *raised by the evaluator itself* are not swallowed: they
    propagate exactly as they would on the serial path.

    Use as a context manager (or call :meth:`close`) to reclaim the
    worker processes.
    """

    def __init__(self, evaluator: AccuracyEvaluator, max_workers: int = 2):
        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        self.evaluator = evaluator
        self.max_workers = max_workers
        self._pool: ProcessPoolExecutor | None = None
        self._pool_broken = False

    def evaluate(self, architecture: Architecture) -> EvaluationOutcome:
        """Single candidate: delegate in-process."""
        return self.evaluator.evaluate(architecture)

    def evaluate_batch(
        self, architectures: Sequence[Architecture]
    ) -> list[EvaluationOutcome]:
        """Score a batch across the pool, preserving input order."""
        if self.max_workers <= 1 or len(architectures) <= 1:
            return [self.evaluator.evaluate(a) for a in architectures]
        pool = self._ensure_pool()
        if pool is None:
            return [self.evaluator.evaluate(a) for a in architectures]
        try:
            return list(pool.map(_worker_evaluate, architectures))
        except BrokenProcessPool:
            # Pool infrastructure died (worker OOM-killed, interpreter
            # crash).  That must not kill the search: fall back to serial
            # for the rest of the run.  Evaluation errors raised *inside*
            # the evaluator are not caught here -- they propagate like on
            # the serial path.
            self._mark_broken("process pool broke mid-run")
            return [self.evaluator.evaluate(a) for a in architectures]

    def latency_eval_seconds(self) -> float:
        """Delegate the FNAS-tool cost constant."""
        return self.evaluator.latency_eval_seconds()

    def _ensure_pool(self) -> ProcessPoolExecutor | None:
        if self._pool_broken:
            return None
        if self._pool is None:
            try:
                self._pool = ProcessPoolExecutor(
                    max_workers=self.max_workers,
                    initializer=_init_worker,
                    initargs=(self.evaluator,),
                )
            except Exception as exc:
                self._mark_broken(f"could not start process pool ({exc!r})")
                return None
        return self._pool

    def _mark_broken(self, reason: str) -> None:
        """Disable the pool for the rest of the run -- audibly."""
        self._pool_broken = True
        self.close()
        warnings.warn(
            f"ParallelEvaluator: {reason}; evaluating serially from here on",
            RuntimeWarning,
            stacklevel=3,
        )

    def close(self) -> None:
        """Shut down the worker processes (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None

    def __enter__(self) -> "ParallelEvaluator":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# --- Registry entries -----------------------------------------------------
#
# Factory contract: factory(space, config, seed) -> AccuracyEvaluator.
# Plans name evaluators by these keys (repro.plans.SearchPlan.evaluator).

from repro.registry import EVALUATORS


@EVALUATORS.register("surrogate")
def _surrogate_factory(
    space: SearchSpace, config: ExperimentConfig, seed: int
) -> SurrogateAccuracyEvaluator:
    """The calibrated landscape -- the paper-scale default."""
    return SurrogateAccuracyEvaluator(space, config=config, seed=seed)


@EVALUATORS.register("trained")
def _trained_factory(
    space: SearchSpace, config: ExperimentConfig, seed: int
) -> TrainedAccuracyEvaluator:
    """Real NumPy training on the config's synthetic dataset.

    Built at laptop-friendly dataset sizes (the registry contract has
    no size knobs); construct :class:`TrainedAccuracyEvaluator` directly
    for Table 2-scale data.
    """
    del space  # the dataset, not the space, parameterises training
    from repro.datasets.registry import load_dataset

    return TrainedAccuracyEvaluator(
        load_dataset(config.dataset, seed=seed), init_seed=seed
    )
