"""Accuracy evaluators: how a child network's accuracy ``A`` is obtained.

Two interchangeable implementations behind one protocol:

* :class:`TrainedAccuracyEvaluator` -- actually trains the child with
  the NumPy substrate on a (synthetic) dataset; the honest path, used
  in examples and integration tests.
* :class:`SurrogateAccuracyEvaluator` -- the calibrated landscape of
  ``repro.surrogate``; the paper-scale path used by the benchmark
  harness, with simulated search-time costs anchored on Table 1.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Protocol

import numpy as np

from repro.core.architecture import Architecture
from repro.core.search_space import SearchSpace
from repro.datasets.base import Dataset
from repro.configs import ExperimentConfig, get_config
from repro.nn.builder import build_network
from repro.nn.trainer import Trainer
from repro.surrogate.accuracy_model import (
    SurrogateAccuracyModel,
    SurrogateCalibration,
)
from repro.surrogate.cost_model import SearchCostModel


@dataclass(frozen=True)
class EvaluationOutcome:
    """Accuracy of one trained child plus what the training cost."""

    accuracy: float
    train_seconds: float


class AccuracyEvaluator(Protocol):
    """Anything that can score a child network."""

    def evaluate(self, architecture: Architecture) -> EvaluationOutcome:
        """Train (or simulate training) and return the reward accuracy."""
        ...

    def latency_eval_seconds(self) -> float:
        """Cost charged for one FNAS-tool latency estimate."""
        ...


class SurrogateAccuracyEvaluator:
    """Surrogate landscape + Table 1-anchored cost model."""

    def __init__(
        self,
        space: SearchSpace,
        config: ExperimentConfig | None = None,
        calibration: SurrogateCalibration | None = None,
        seed: int = 0,
    ):
        self.space = space
        self.config = config if config is not None else get_config(space.name)
        self.model = SurrogateAccuracyModel(
            space, calibration=calibration, seed=seed
        )
        self.cost_model = SearchCostModel(self.config)

    def evaluate(self, architecture: Architecture) -> EvaluationOutcome:
        """Simulated accuracy + simulated training cost."""
        return EvaluationOutcome(
            accuracy=self.model.accuracy(architecture),
            train_seconds=self.cost_model.train_seconds(architecture),
        )

    def latency_eval_seconds(self) -> float:
        """Simulated FNAS-tool cost per estimate."""
        return self.cost_model.latency_eval_seconds()


class TrainedAccuracyEvaluator:
    """Real NumPy training on a dataset; costs are measured wall time."""

    #: Wall cost of one analytical latency estimate (measured, tiny).
    LATENCY_EVAL_SECONDS = 0.05

    def __init__(
        self,
        dataset: Dataset,
        trainer: Trainer | None = None,
        init_seed: int = 0,
    ):
        self.dataset = dataset
        self.trainer = trainer if trainer is not None else Trainer(
            epochs=5, lr=0.02
        )
        self.init_seed = init_seed

    def evaluate(self, architecture: Architecture) -> EvaluationOutcome:
        """Build, train, and score one child network."""
        if architecture.input_size != self.dataset.input_size:
            raise ValueError(
                f"architecture expects {architecture.input_size}px inputs, "
                f"dataset provides {self.dataset.input_size}px"
            )
        if architecture.input_channels != self.dataset.input_channels:
            raise ValueError(
                f"architecture expects {architecture.input_channels} "
                f"channels, dataset provides {self.dataset.input_channels}"
            )
        started = time.perf_counter()
        network = build_network(
            architecture, rng=np.random.default_rng(self.init_seed)
        )
        result = self.trainer.train(
            network,
            self.dataset.train_x,
            self.dataset.train_y,
            self.dataset.val_x,
            self.dataset.val_y,
        )
        return EvaluationOutcome(
            accuracy=result.best_accuracy,
            train_seconds=time.perf_counter() - started,
        )

    def latency_eval_seconds(self) -> float:
        """Nominal analytical-model cost."""
        return self.LATENCY_EVAL_SECONDS
