"""The search loops: plain NAS (baseline) and FNAS.

Both drive the same controller/evaluator machinery; they differ exactly
where the paper says they do (Figure 1 vs Figure 2):

* :class:`NasSearch` -- Zoph-style accuracy-only search: every sampled
  child is trained, reward is the accuracy, the advantage is
  ``A - b`` with ``b`` the EMA baseline.
* :class:`FnasSearch` -- FNAS: every sampled child first goes through
  the FNAS tool (latency estimate).  Spec violators get the negative
  reward of eq. (1) *without being trained*; the rest are trained and
  rewarded with ``(A - b) + L/rL``.

Each trial is logged to a :class:`SearchResult` ledger that records both
the simulated search cost (what Table 1's "Elapsed" column measures)
and the outcome quality.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.architecture import Architecture
from repro.core.controller import Controller, LstmController
from repro.core.evaluator import AccuracyEvaluator
from repro.core.reward import AccuracyBaseline, FnasReward
from repro.core.search_space import SearchSpace
from repro.latency.estimator import LatencyEstimator


@dataclass(frozen=True)
class TrialRecord:
    """One controller sample and everything that happened to it."""

    index: int
    tokens: tuple[int, ...]
    architecture: Architecture
    latency_ms: float | None
    accuracy: float | None
    reward: float
    trained: bool
    sim_seconds: float

    @property
    def pruned(self) -> bool:
        """True when the FNAS tool rejected the child before training."""
        return not self.trained


@dataclass
class SearchResult:
    """Full ledger of one search run."""

    name: str
    trials: list[TrialRecord] = field(default_factory=list)
    wall_seconds: float = 0.0

    @property
    def simulated_seconds(self) -> float:
        """Total simulated search time (the Table 1 'Elapsed' analogue)."""
        return sum(t.sim_seconds for t in self.trials)

    @property
    def trained_count(self) -> int:
        """Children that were actually trained."""
        return sum(1 for t in self.trials if t.trained)

    @property
    def pruned_count(self) -> int:
        """Children rejected by the latency check before training."""
        return sum(1 for t in self.trials if t.pruned)

    def best(self) -> TrialRecord:
        """Highest-accuracy trained trial."""
        trained = [t for t in self.trials if t.accuracy is not None]
        if not trained:
            raise ValueError(f"search {self.name!r} trained no children")
        return max(trained, key=lambda t: t.accuracy)

    def best_valid(self, required_latency_ms: float) -> TrialRecord:
        """Highest-accuracy trial whose latency meets ``required_latency_ms``."""
        valid = [
            t for t in self.trials
            if t.accuracy is not None
            and t.latency_ms is not None
            and t.latency_ms <= required_latency_ms
        ]
        if not valid:
            raise ValueError(
                f"search {self.name!r} found no child meeting "
                f"{required_latency_ms}ms"
            )
        return max(valid, key=lambda t: t.accuracy)


class NasSearch:
    """Accuracy-only architecture search (the paper's baseline [16])."""

    def __init__(
        self,
        space: SearchSpace,
        evaluator: AccuracyEvaluator,
        controller: Controller | None = None,
        latency_estimator: LatencyEstimator | None = None,
        baseline_decay: float = 0.9,
    ):
        self.space = space
        self.evaluator = evaluator
        self.controller = (
            controller if controller is not None else LstmController(space)
        )
        # NAS ignores latency during search, but the experiments report
        # the latency of its final architecture; an estimator here lets
        # the ledger carry it without affecting the reward.
        self.latency_estimator = latency_estimator
        self.baseline = AccuracyBaseline(decay=baseline_decay)

    def run(self, trials: int, rng: np.random.Generator) -> SearchResult:
        """Sample, train and update for ``trials`` children."""
        if trials <= 0:
            raise ValueError(f"trials must be positive, got {trials}")
        result = SearchResult(name="nas")
        started = time.perf_counter()
        for index in range(trials):
            sample = self.controller.sample(rng)
            architecture = self.space.decode(sample.tokens)
            outcome = self.evaluator.evaluate(architecture)
            advantage = outcome.accuracy - self.baseline.value
            if not self.baseline.initialized:
                advantage = 0.0
            self.baseline.update(outcome.accuracy)
            self.controller.update(sample, advantage)
            latency_ms = None
            if self.latency_estimator is not None:
                latency_ms = self.latency_estimator.estimate(architecture).ms
            result.trials.append(
                TrialRecord(
                    index=index,
                    tokens=tuple(sample.tokens),
                    architecture=architecture,
                    latency_ms=latency_ms,
                    accuracy=outcome.accuracy,
                    reward=outcome.accuracy,
                    trained=True,
                    sim_seconds=outcome.train_seconds,
                )
            )
        result.wall_seconds = time.perf_counter() - started
        return result


class FnasSearch:
    """FPGA-implementation aware search (the paper's Figure 2 loop)."""

    def __init__(
        self,
        space: SearchSpace,
        evaluator: AccuracyEvaluator,
        latency_estimator: LatencyEstimator,
        required_latency_ms: float,
        controller: Controller | None = None,
        baseline_decay: float = 0.9,
        min_latency_fallback: bool = False,
    ):
        """``min_latency_fallback``: if the trial budget ends with no
        spec-meeting child trained, evaluate the space's smallest
        (minimum-capacity, hence fastest) architecture as one extra
        ledger entry, so a valid design is returned whenever the spec is
        satisfiable at all."""
        self.space = space
        self.evaluator = evaluator
        self.latency_estimator = latency_estimator
        self.reward_fn = FnasReward(required_latency_ms)
        self.controller = (
            controller if controller is not None else LstmController(space)
        )
        self.baseline = AccuracyBaseline(decay=baseline_decay)
        self.min_latency_fallback = min_latency_fallback

    @property
    def required_latency_ms(self) -> float:
        """The timing specification ``rL``."""
        return self.reward_fn.required_latency_ms

    def run(self, trials: int, rng: np.random.Generator) -> SearchResult:
        """Run the FNAS loop for ``trials`` children."""
        if trials <= 0:
            raise ValueError(f"trials must be positive, got {trials}")
        result = SearchResult(name=f"fnas-{self.required_latency_ms:g}ms")
        started = time.perf_counter()
        for index in range(trials):
            sample = self.controller.sample(rng)
            architecture = self.space.decode(sample.tokens)
            latency_ms = self.latency_estimator.estimate(architecture).ms
            sim_seconds = self.evaluator.latency_eval_seconds()
            if self.reward_fn.violates(latency_ms):
                signal = self.reward_fn.violation(latency_ms)
                accuracy = None
                trained = False
                advantage = signal.value
            else:
                outcome = self.evaluator.evaluate(architecture)
                accuracy = outcome.accuracy
                sim_seconds += outcome.train_seconds
                signal = self.reward_fn.satisfaction(
                    accuracy, latency_ms, self.baseline.value
                )
                trained = True
                advantage = signal.value
                self.baseline.update(accuracy)
            self.controller.update(sample, advantage)
            result.trials.append(
                TrialRecord(
                    index=index,
                    tokens=tuple(sample.tokens),
                    architecture=architecture,
                    latency_ms=latency_ms,
                    accuracy=accuracy,
                    reward=signal.value,
                    trained=trained,
                    sim_seconds=sim_seconds,
                )
            )
        if self.min_latency_fallback and not any(
            t.trained and t.latency_ms is not None
            and t.latency_ms <= self.required_latency_ms
            for t in result.trials
        ):
            self._append_fallback_trial(result)
        result.wall_seconds = time.perf_counter() - started
        return result

    def _append_fallback_trial(self, result: SearchResult) -> None:
        """Train the smallest architecture if it meets the spec."""
        tokens = [0] * self.space.num_decisions
        architecture = self.space.decode(tokens)
        latency_ms = self.latency_estimator.estimate(architecture).ms
        if self.reward_fn.violates(latency_ms):
            return  # the spec is unsatisfiable even by the smallest child
        outcome = self.evaluator.evaluate(architecture)
        signal = self.reward_fn.satisfaction(
            outcome.accuracy, latency_ms, self.baseline.value
        )
        result.trials.append(
            TrialRecord(
                index=len(result.trials),
                tokens=tuple(tokens),
                architecture=architecture,
                latency_ms=latency_ms,
                accuracy=outcome.accuracy,
                reward=signal.value,
                trained=True,
                sim_seconds=(self.evaluator.latency_eval_seconds()
                             + outcome.train_seconds),
            )
        )
