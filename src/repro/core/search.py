"""The search loops: plain NAS (baseline) and FNAS.

Both drive the same controller/evaluator machinery; they differ exactly
where the paper says they do (Figure 1 vs Figure 2):

* :class:`NasSearch` -- Zoph-style accuracy-only search: every sampled
  child is trained, reward is the accuracy, the advantage is
  ``A - b`` with ``b`` the EMA baseline.
* :class:`FnasSearch` -- FNAS: every sampled child first goes through
  the FNAS tool (latency estimate).  Spec violators get the negative
  reward of eq. (1) *without being trained*; the rest are trained and
  rewarded with ``(A - b) + L/rL``.

Each trial is logged to a :class:`SearchResult` ledger that records both
the simulated search cost (what Table 1's "Elapsed" column measures)
and the outcome quality.

Both loops accept a ``batch_size``.  With ``batch_size=1`` (the
default) they run the original sequential loop -- sample, evaluate,
update, one candidate at a time -- and reproduce the seed trajectories
token-for-token.  With ``batch_size > 1`` each step samples a whole
batch from the controller in one vectorized pass, estimates latencies
through the two-tier cache (:meth:`LatencyEstimator.estimate_batch`),
evaluates survivors together (parallelisable via
:class:`~repro.core.evaluator.ParallelEvaluator`) and applies one
batched REINFORCE update.  Advantages within a batch are computed
against the baseline value at the start of the batch -- every sample
was drawn from the same policy, so this is standard batch REINFORCE --
and the ledger keeps one :class:`TrialRecord` per candidate in sample
order, preserving trial-ledger semantics.

Both loops are also **checkpointable**: ``run(...,
checkpoint_every=N, checkpoint_path=p)`` atomically snapshots the
complete search state -- controller parameters and optimizer moments,
the reward baseline, the RNG stream position, the trial ledger so far
and the estimator's cache counters -- every ``N`` trials.
:meth:`Search.resume` rebuilds that state and continues the run; the
resulting trial ledger is byte-identical to the uninterrupted run's,
because every source of randomness and learning state is captured.
The :mod:`repro.orchestration` campaign runner builds shard recovery
on top of exactly this property.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.core.architecture import Architecture
from repro.core.controller import (
    Controller,
    ControllerBatch,
    LstmController,
)
from repro.core.evaluator import AccuracyEvaluator, evaluate_many
from repro.core.reward import AccuracyBaseline, FnasReward
from repro.core.search_space import SearchSpace
from repro.latency.estimator import LatencyEstimator


@dataclass(frozen=True)
class TrialRecord:
    """One controller sample and everything that happened to it."""

    index: int
    tokens: tuple[int, ...]
    architecture: Architecture
    latency_ms: float | None
    accuracy: float | None
    reward: float
    trained: bool
    sim_seconds: float

    @property
    def pruned(self) -> bool:
        """True when the FNAS tool rejected the child before training."""
        return not self.trained


@dataclass
class SearchResult:
    """Full ledger of one search run.

    The aggregate properties (:attr:`simulated_seconds`,
    :attr:`trained_count`, :attr:`pruned_count`) fold in newly appended
    trials incrementally, so reading them per trial stays O(1) even for
    large ledgers.  Appending to ``trials`` is supported; in-place
    replacement of existing records is not (truncate-and-rebuild
    instead, which resets the fold).
    """

    name: str
    trials: list[TrialRecord] = field(default_factory=list)
    wall_seconds: float = 0.0
    _agg_len: int = field(default=0, repr=False, compare=False)
    _sim_seconds_sum: float = field(default=0.0, repr=False, compare=False)
    _trained_sum: int = field(default=0, repr=False, compare=False)
    _last_folded: TrialRecord | None = field(
        default=None, repr=False, compare=False
    )

    def _refresh_aggregates(self) -> None:
        """Fold any trials appended since the last aggregate read."""
        n = len(self.trials)
        stale = n < self._agg_len or (
            # Truncated-then-extended between reads: the record at the
            # fold frontier is no longer the one that was folded last.
            self._agg_len > 0
            and self.trials[self._agg_len - 1] is not self._last_folded
        )
        if stale:
            self._agg_len = 0
            self._sim_seconds_sum = 0.0
            self._trained_sum = 0
        for trial in self.trials[self._agg_len:n]:
            self._sim_seconds_sum += trial.sim_seconds
            self._trained_sum += 1 if trial.trained else 0
        self._agg_len = n
        self._last_folded = self.trials[-1] if self.trials else None

    @property
    def simulated_seconds(self) -> float:
        """Total simulated search time (the Table 1 'Elapsed' analogue)."""
        self._refresh_aggregates()
        return self._sim_seconds_sum

    @property
    def trained_count(self) -> int:
        """Children that were actually trained."""
        self._refresh_aggregates()
        return self._trained_sum

    @property
    def pruned_count(self) -> int:
        """Children rejected by the latency check before training."""
        self._refresh_aggregates()
        return len(self.trials) - self._trained_sum

    def best(self) -> TrialRecord:
        """Highest-accuracy trained trial."""
        trained = [t for t in self.trials if t.accuracy is not None]
        if not trained:
            raise ValueError(f"search {self.name!r} trained no children")
        return max(trained, key=lambda t: t.accuracy)

    def best_valid(self, required_latency_ms: float) -> TrialRecord:
        """Highest-accuracy trial whose latency meets ``required_latency_ms``."""
        valid = [
            t for t in self.trials
            if t.accuracy is not None
            and t.latency_ms is not None
            and t.latency_ms <= required_latency_ms
        ]
        if not valid:
            raise ValueError(
                f"search {self.name!r} found no child meeting "
                f"{required_latency_ms}ms"
            )
        return max(valid, key=lambda t: t.accuracy)


class SearchCancelled(RuntimeError):
    """A cooperative stop request interrupted a search.

    Raised out of :meth:`Search.run` / :meth:`Search.resume` when their
    ``should_stop`` callable returns True between trials.  When the run
    is checkpointed, a final snapshot is forced *before* raising, so
    the completed trials survive and a later :meth:`Search.resume` (or
    a service resubmit) continues exactly where the cancellation
    landed.  ``completed`` counts the trials finished before the stop.
    """

    def __init__(self, completed: int):
        super().__init__(f"search cancelled after {completed} trial(s)")
        self.completed = completed


def _check_run_args(trials: int, batch_size: int) -> None:
    if trials <= 0:
        raise ValueError(f"trials must be positive, got {trials}")
    if batch_size <= 0:
        raise ValueError(f"batch_size must be positive, got {batch_size}")


class _CheckpointPlan:
    """When and where a running search writes snapshots.

    One snapshot lands after the first completed trial (batch) at or
    past each multiple of ``every``; writes are atomic, so a crash
    between (or during) snapshots costs at most ``every`` trials of
    progress, never the checkpoint file itself.
    """

    def __init__(
        self,
        search: "Search",
        trials: int,
        batch_size: int,
        every: int,
        path: str | Path,
        started: float,
        wall_offset: float,
        start_index: int,
    ):
        if every <= 0:
            raise ValueError(
                f"checkpoint_every must be positive, got {every}"
            )
        self.search = search
        self.trials = trials
        self.batch_size = batch_size
        self.every = every
        self.path = Path(path)
        self.started = started
        self.wall_offset = wall_offset
        self._next = (start_index // every + 1) * every

    def after(
        self, completed: int, rng: np.random.Generator, result: SearchResult
    ) -> None:
        """Snapshot if ``completed`` trials crossed the next threshold."""
        if completed < self._next:
            return
        self.snapshot_now(completed, rng, result)
        self._next = (completed // self.every + 1) * self.every

    def snapshot_now(
        self, completed: int, rng: np.random.Generator, result: SearchResult
    ) -> None:
        """Write a snapshot at ``completed`` trials unconditionally.

        Cadence-independent -- cancellation uses this to persist the
        exact stopping point before raising :class:`SearchCancelled`.
        """
        from repro.core import serialization

        elapsed = self.wall_offset + (time.perf_counter() - self.started)
        payload = self.search._snapshot_payload(
            trials=self.trials,
            batch_size=self.batch_size,
            checkpoint_every=self.every,
            next_index=completed,
            rng=rng,
            result=result,
            elapsed_wall_seconds=elapsed,
        )
        serialization.atomic_write_json(payload, self.path)


class _RunControl:
    """Per-trial hook combining checkpointing and cooperative cancel.

    Stands in for :class:`_CheckpointPlan` inside the sampling loops
    (same ``after`` protocol).  After every completed trial (batch) it
    first lets the checkpoint plan snapshot at its cadence, then
    consults ``should_stop``; a stop request forces a final snapshot
    (when checkpointing is configured) and raises
    :class:`SearchCancelled`, so no completed work is lost.
    """

    def __init__(self, plan: _CheckpointPlan | None, should_stop):
        self.plan = plan
        self.should_stop = should_stop

    def after(
        self, completed: int, rng: np.random.Generator, result: SearchResult
    ) -> None:
        """Checkpoint at cadence, then honor a pending stop request."""
        if self.plan is not None:
            self.plan.after(completed, rng, result)
        if self.should_stop is not None and self.should_stop():
            if self.plan is not None:
                self.plan.snapshot_now(completed, rng, result)
            raise SearchCancelled(completed)


class Search:
    """Shared run / checkpoint / resume machinery of the search loops.

    Subclasses provide the actual sampling loops (``_run_sequential``,
    ``_run_batched``), a ledger name, and any end-of-run finalisation;
    this base owns the driving logic so checkpointing behaves
    identically for NAS and FNAS.

    Attributes expected on subclasses: ``controller``, ``baseline`` and
    ``latency_estimator`` (``None`` is fine for the last).
    """

    #: Snapshot discriminator, overridden per subclass.
    _kind = "search"

    def run(
        self,
        trials: int,
        rng: np.random.Generator,
        batch_size: int = 1,
        checkpoint_every: int | None = None,
        checkpoint_path: str | Path | None = None,
        should_stop=None,
    ) -> SearchResult:
        """Run the search for ``trials`` children.

        ``batch_size=1`` reproduces the sequential seed trajectory
        exactly; larger batches drive the vectorized path.  With
        ``checkpoint_every`` and ``checkpoint_path`` set, the search
        atomically snapshots its full state every that many trials --
        see :meth:`resume`.  ``should_stop`` (a zero-argument callable)
        is polled after every completed trial; returning True cancels
        the run via :class:`SearchCancelled`, snapshotting first when
        checkpointing is on.
        """
        _check_run_args(trials, batch_size)
        result = SearchResult(name=self._result_name())
        return self._drive(
            result, trials, rng, batch_size,
            start_index=0,
            checkpoint_every=checkpoint_every,
            checkpoint_path=checkpoint_path,
            wall_offset=0.0,
            should_stop=should_stop,
        )

    def resume(
        self, path: str | Path, snapshot: dict | None = None,
        should_stop=None,
    ) -> SearchResult:
        """Continue an interrupted run from a snapshot file.

        The search object must be constructed the same way as the one
        that wrote the snapshot (same space, evaluator, estimator and
        controller configuration); everything trajectory-relevant --
        controller weights and optimizer moments, baseline, RNG stream,
        ledger -- is restored from the file, so the completed run's
        trial ledger is byte-identical to an uninterrupted run's.
        Checkpointing continues at the snapshot's cadence and path.

        ``snapshot`` lets a caller that already read and parsed the
        file (to validate it, say) pass the dict in and skip the second
        read; snapshots can be multi-megabyte at paper scale.
        ``should_stop`` polls for cooperative cancellation exactly as
        in :meth:`run`.
        """
        if snapshot is None:
            snapshot = json.loads(Path(path).read_text())
        from repro.core import serialization

        if snapshot.get("schema") != serialization.SCHEMA_VERSION:
            raise ValueError(
                f"unsupported checkpoint schema {snapshot.get('schema')}"
            )
        if snapshot.get("kind") != self._kind:
            raise ValueError(
                f"checkpoint was written by a {snapshot.get('kind')!r} "
                f"search, cannot resume as {self._kind!r}"
            )
        self._check_snapshot_compatible(snapshot)
        loader = getattr(self.controller, "load_state_dict", None)
        if loader is None:
            raise ValueError(
                f"{type(self.controller).__name__} has no load_state_dict; "
                "cannot resume a checkpointed search with it"
            )
        loader(snapshot["controller"])
        self.baseline.load_state_dict(snapshot["baseline"])
        serialization.restore_cache_stats(
            self.latency_estimator, snapshot.get("cache_stats")
        )
        rng = serialization.rng_from_state(snapshot["rng"])
        result = serialization.search_result_from_dict(snapshot["result"])
        return self._drive(
            result,
            snapshot["trials_total"],
            rng,
            snapshot["batch_size"],
            start_index=snapshot["next_index"],
            checkpoint_every=snapshot.get("checkpoint_every"),
            checkpoint_path=path,
            wall_offset=snapshot.get("elapsed_wall_seconds", 0.0),
            should_stop=should_stop,
        )

    # -- internals -----------------------------------------------------------

    def _drive(
        self,
        result: SearchResult,
        trials: int,
        rng: np.random.Generator,
        batch_size: int,
        start_index: int,
        checkpoint_every: int | None,
        checkpoint_path: str | Path | None,
        wall_offset: float,
        should_stop=None,
    ) -> SearchResult:
        """Execute the span ``[start_index, trials)`` and finalise."""
        started = time.perf_counter()
        plan: _CheckpointPlan | None = None
        if checkpoint_every is not None or checkpoint_path is not None:
            if checkpoint_every is None or checkpoint_path is None:
                raise ValueError(
                    "checkpoint_every and checkpoint_path must be given "
                    "together"
                )
            if getattr(self.controller, "state_dict", None) is None:
                raise ValueError(
                    f"{type(self.controller).__name__} has no state_dict; "
                    "checkpointing needs a controller that can snapshot "
                    "its learnable state"
                )
            plan = _CheckpointPlan(
                self, trials, batch_size, checkpoint_every, checkpoint_path,
                started, wall_offset, start_index,
            )
        control = plan
        if should_stop is not None:
            if should_stop():
                raise SearchCancelled(start_index)
            control = _RunControl(plan, should_stop)
        if batch_size == 1:
            self._run_sequential(trials, rng, result, start=start_index,
                                 plan=control)
        else:
            self._run_batched(trials, rng, batch_size, result,
                              start=start_index, plan=control)
        self._finalize(result)
        result.wall_seconds = wall_offset + (time.perf_counter() - started)
        return result

    def _snapshot_payload(
        self,
        trials: int,
        batch_size: int,
        checkpoint_every: int,
        next_index: int,
        rng: np.random.Generator,
        result: SearchResult,
        elapsed_wall_seconds: float,
    ) -> dict:
        """Assemble the JSON checkpoint document."""
        from repro.core import serialization

        payload = {
            "schema": serialization.SCHEMA_VERSION,
            "kind": self._kind,
            "trials_total": trials,
            "batch_size": batch_size,
            "checkpoint_every": checkpoint_every,
            "next_index": next_index,
            "rng": serialization.rng_state_to_dict(rng),
            "controller": self.controller.state_dict(),
            "baseline": self.baseline.state_dict(),
            "cache_stats": serialization.cache_stats_to_dict(
                self.latency_estimator
            ),
            "result": serialization.search_result_to_dict(result),
            "elapsed_wall_seconds": elapsed_wall_seconds,
        }
        payload.update(self._snapshot_extras())
        return payload

    def _snapshot_extras(self) -> dict:
        """Kind-specific snapshot fields (spec etc.)."""
        return {}

    def _check_snapshot_compatible(self, snapshot: dict) -> None:
        """Raise if the snapshot cannot drive this search object."""

    def _result_name(self) -> str:
        """Ledger name for a fresh run."""
        raise NotImplementedError

    def _finalize(self, result: SearchResult) -> None:
        """End-of-run hook (FNAS uses it for the min-latency fallback)."""

    def _run_sequential(
        self,
        trials: int,
        rng: np.random.Generator,
        result: SearchResult,
        start: int = 0,
        plan: _CheckpointPlan | None = None,
    ) -> None:
        raise NotImplementedError

    def _run_batched(
        self,
        trials: int,
        rng: np.random.Generator,
        batch_size: int,
        result: SearchResult,
        start: int = 0,
        plan: _CheckpointPlan | None = None,
    ) -> None:
        raise NotImplementedError


def _sample_candidates(
    controller: Controller, rng: np.random.Generator, count: int
) -> ControllerBatch:
    """Draw ``count`` samples, vectorized when the controller supports it."""
    sampler = getattr(controller, "sample_batch", None)
    if sampler is not None:
        return sampler(rng, count)
    return ControllerBatch(
        samples=[controller.sample(rng) for _ in range(count)]
    )


def _update_candidates(
    controller: Controller, batch: ControllerBatch, advantages: list[float]
) -> float:
    """Apply the batch's REINFORCE update; returns the mean loss."""
    updater = getattr(controller, "update_batch", None)
    if updater is not None and batch.cache is not None:
        return updater(batch, advantages)
    total = sum(
        controller.update(sample, advantage)
        for sample, advantage in zip(batch.samples, advantages)
    )
    return total / len(batch)


class NasSearch(Search):
    """Accuracy-only architecture search (the paper's baseline [16])."""

    _kind = "nas"

    def __init__(
        self,
        space: SearchSpace,
        evaluator: AccuracyEvaluator,
        controller: Controller | None = None,
        latency_estimator: LatencyEstimator | None = None,
        baseline_decay: float = 0.9,
    ):
        self.space = space
        self.evaluator = evaluator
        self.controller = (
            controller if controller is not None else LstmController(space)
        )
        # NAS ignores latency during search, but the experiments report
        # the latency of its final architecture; an estimator here lets
        # the ledger carry it without affecting the reward.
        self.latency_estimator = latency_estimator
        self.baseline = AccuracyBaseline(decay=baseline_decay)

    def _result_name(self) -> str:
        return "nas"

    def _run_sequential(
        self,
        trials: int,
        rng: np.random.Generator,
        result: SearchResult,
        start: int = 0,
        plan: _CheckpointPlan | None = None,
    ) -> None:
        """The original one-candidate-at-a-time loop (seed behaviour)."""
        for index in range(start, trials):
            sample = self.controller.sample(rng)
            architecture = self.space.decode(sample.tokens)
            outcome = self.evaluator.evaluate(architecture)
            advantage = outcome.accuracy - self.baseline.value
            if not self.baseline.initialized:
                advantage = 0.0
            self.baseline.update(outcome.accuracy)
            self.controller.update(sample, advantage)
            latency_ms = None
            if self.latency_estimator is not None:
                latency_ms = self.latency_estimator.estimate(architecture).ms
            result.trials.append(
                TrialRecord(
                    index=index,
                    tokens=tuple(sample.tokens),
                    architecture=architecture,
                    latency_ms=latency_ms,
                    accuracy=outcome.accuracy,
                    reward=outcome.accuracy,
                    trained=True,
                    sim_seconds=outcome.train_seconds,
                )
            )
            if plan is not None:
                plan.after(index + 1, rng, result)

    def _run_batched(
        self,
        trials: int,
        rng: np.random.Generator,
        batch_size: int,
        result: SearchResult,
        start: int = 0,
        plan: _CheckpointPlan | None = None,
    ) -> None:
        """Batch REINFORCE: one vectorized update per sampled batch."""
        index = start
        while index < trials:
            count = min(batch_size, trials - index)
            batch = _sample_candidates(self.controller, rng, count)
            architectures = [
                self.space.decode(s.tokens) for s in batch.samples
            ]
            outcomes = evaluate_many(self.evaluator, architectures)
            accuracies = [o.accuracy for o in outcomes]
            # All samples came from the same policy, so one shared
            # reference is the standard batch REINFORCE baseline; before
            # the EMA has seen anything, the batch mean substitutes.
            reference = (
                self.baseline.value if self.baseline.initialized
                else float(np.mean(accuracies))
            )
            advantages = [a - reference for a in accuracies]
            for accuracy in accuracies:
                self.baseline.update(accuracy)
            _update_candidates(self.controller, batch, advantages)
            if self.latency_estimator is not None:
                latencies = [
                    e.ms
                    for e in self.latency_estimator.estimate_batch(architectures)
                ]
            else:
                latencies = [None] * count
            for offset in range(count):
                result.trials.append(
                    TrialRecord(
                        index=index + offset,
                        tokens=tuple(batch.samples[offset].tokens),
                        architecture=architectures[offset],
                        latency_ms=latencies[offset],
                        accuracy=accuracies[offset],
                        reward=accuracies[offset],
                        trained=True,
                        sim_seconds=outcomes[offset].train_seconds,
                    )
                )
            index += count
            if plan is not None:
                plan.after(index, rng, result)


class FnasSearch(Search):
    """FPGA-implementation aware search (the paper's Figure 2 loop)."""

    _kind = "fnas"

    def __init__(
        self,
        space: SearchSpace,
        evaluator: AccuracyEvaluator,
        latency_estimator: LatencyEstimator,
        required_latency_ms: float,
        controller: Controller | None = None,
        baseline_decay: float = 0.9,
        min_latency_fallback: bool = False,
    ):
        """``min_latency_fallback``: if the trial budget ends with no
        spec-meeting child trained, evaluate the space's smallest
        (minimum-capacity, hence fastest) architecture as one extra
        ledger entry, so a valid design is returned whenever the spec is
        satisfiable at all."""
        self.space = space
        self.evaluator = evaluator
        self.latency_estimator = latency_estimator
        self.reward_fn = FnasReward(required_latency_ms)
        self.controller = (
            controller if controller is not None else LstmController(space)
        )
        self.baseline = AccuracyBaseline(decay=baseline_decay)
        self.min_latency_fallback = min_latency_fallback

    @property
    def required_latency_ms(self) -> float:
        """The timing specification ``rL``."""
        return self.reward_fn.required_latency_ms

    def _result_name(self) -> str:
        return f"fnas-{self.required_latency_ms:g}ms"

    def _snapshot_extras(self) -> dict:
        return {"required_latency_ms": self.required_latency_ms}

    def _check_snapshot_compatible(self, snapshot: dict) -> None:
        spec = snapshot.get("required_latency_ms")
        if spec is not None and spec != self.required_latency_ms:
            raise ValueError(
                f"checkpoint targets a {spec}ms spec, this search targets "
                f"{self.required_latency_ms}ms"
            )

    def _finalize(self, result: SearchResult) -> None:
        if self.min_latency_fallback and not any(
            t.trained and t.latency_ms is not None
            and t.latency_ms <= self.required_latency_ms
            for t in result.trials
        ):
            self._append_fallback_trial(result)

    def _run_sequential(
        self,
        trials: int,
        rng: np.random.Generator,
        result: SearchResult,
        start: int = 0,
        plan: _CheckpointPlan | None = None,
    ) -> None:
        """The original one-candidate-at-a-time loop (seed behaviour)."""
        for index in range(start, trials):
            sample = self.controller.sample(rng)
            architecture = self.space.decode(sample.tokens)
            latency_ms = self.latency_estimator.estimate(architecture).ms
            sim_seconds = self.evaluator.latency_eval_seconds()
            if self.reward_fn.violates(latency_ms):
                signal = self.reward_fn.violation(latency_ms)
                accuracy = None
                trained = False
                advantage = signal.value
            else:
                outcome = self.evaluator.evaluate(architecture)
                accuracy = outcome.accuracy
                sim_seconds += outcome.train_seconds
                signal = self.reward_fn.satisfaction(
                    accuracy, latency_ms, self.baseline.value
                )
                trained = True
                advantage = signal.value
                self.baseline.update(accuracy)
            self.controller.update(sample, advantage)
            result.trials.append(
                TrialRecord(
                    index=index,
                    tokens=tuple(sample.tokens),
                    architecture=architecture,
                    latency_ms=latency_ms,
                    accuracy=accuracy,
                    reward=signal.value,
                    trained=trained,
                    sim_seconds=sim_seconds,
                )
            )
            if plan is not None:
                plan.after(index + 1, rng, result)

    def _run_batched(
        self,
        trials: int,
        rng: np.random.Generator,
        batch_size: int,
        result: SearchResult,
        start: int = 0,
        plan: _CheckpointPlan | None = None,
    ) -> None:
        """Figure 2's loop over whole batches.

        The latency check partitions each batch: violators are rewarded
        (negatively) straight from eq. (1), survivors are trained --
        together, so a :class:`~repro.core.evaluator.ParallelEvaluator`
        can fan them across processes -- and all candidates share one
        vectorized controller update.
        """
        index = start
        while index < trials:
            count = min(batch_size, trials - index)
            batch = _sample_candidates(self.controller, rng, count)
            architectures = [
                self.space.decode(s.tokens) for s in batch.samples
            ]
            estimates = self.latency_estimator.estimate_batch(architectures)
            latency_cost = self.evaluator.latency_eval_seconds()
            survivors = [
                offset for offset, estimate in enumerate(estimates)
                if not self.reward_fn.violates(estimate.ms)
            ]
            outcomes = evaluate_many(
                self.evaluator, [architectures[o] for o in survivors]
            )
            outcome_of = dict(zip(survivors, outcomes))
            reference = self.baseline.value
            rewards: list[float] = []
            records: list[TrialRecord] = []
            for offset, estimate in enumerate(estimates):
                latency_ms = estimate.ms
                sim_seconds = latency_cost
                outcome = outcome_of.get(offset)
                if outcome is None:
                    signal = self.reward_fn.violation(latency_ms)
                    accuracy = None
                    trained = False
                else:
                    accuracy = outcome.accuracy
                    sim_seconds += outcome.train_seconds
                    signal = self.reward_fn.satisfaction(
                        accuracy, latency_ms, reference
                    )
                    trained = True
                    self.baseline.update(accuracy)
                rewards.append(signal.value)
                records.append(
                    TrialRecord(
                        index=index + offset,
                        tokens=tuple(batch.samples[offset].tokens),
                        architecture=architectures[offset],
                        latency_ms=latency_ms,
                        accuracy=accuracy,
                        reward=signal.value,
                        trained=trained,
                        sim_seconds=sim_seconds,
                    )
                )
            _update_candidates(self.controller, batch, rewards)
            result.trials.extend(records)
            index += count
            if plan is not None:
                plan.after(index, rng, result)

    def _append_fallback_trial(self, result: SearchResult) -> None:
        """Train the smallest architecture if it meets the spec."""
        tokens = [0] * self.space.num_decisions
        architecture = self.space.decode(tokens)
        latency_ms = self.latency_estimator.estimate(architecture).ms
        if self.reward_fn.violates(latency_ms):
            return  # the spec is unsatisfiable even by the smallest child
        outcome = self.evaluator.evaluate(architecture)
        signal = self.reward_fn.satisfaction(
            outcome.accuracy, latency_ms, self.baseline.value
        )
        result.trials.append(
            TrialRecord(
                index=len(result.trials),
                tokens=tuple(tokens),
                architecture=architecture,
                latency_ms=latency_ms,
                accuracy=outcome.accuracy,
                reward=signal.value,
                trained=True,
                sim_seconds=(self.evaluator.latency_eval_seconds()
                             + outcome.train_seconds),
            )
        )
