"""The search loops: plain NAS (baseline) and FNAS.

Both drive the same controller/evaluator machinery; they differ exactly
where the paper says they do (Figure 1 vs Figure 2):

* :class:`NasSearch` -- Zoph-style accuracy-only search: every sampled
  child is trained, reward is the accuracy, the advantage is
  ``A - b`` with ``b`` the EMA baseline.
* :class:`FnasSearch` -- FNAS: every sampled child first goes through
  the FNAS tool (latency estimate).  Spec violators get the negative
  reward of eq. (1) *without being trained*; the rest are trained and
  rewarded with ``(A - b) + L/rL``.

Each trial is logged to a :class:`SearchResult` ledger that records both
the simulated search cost (what Table 1's "Elapsed" column measures)
and the outcome quality.

Both loops accept a ``batch_size``.  With ``batch_size=1`` (the
default) they run the original sequential loop -- sample, evaluate,
update, one candidate at a time -- and reproduce the seed trajectories
token-for-token.  With ``batch_size > 1`` each step samples a whole
batch from the controller in one vectorized pass, estimates latencies
through the two-tier cache (:meth:`LatencyEstimator.estimate_batch`),
evaluates survivors together (parallelisable via
:class:`~repro.core.evaluator.ParallelEvaluator`) and applies one
batched REINFORCE update.  Advantages within a batch are computed
against the baseline value at the start of the batch -- every sample
was drawn from the same policy, so this is standard batch REINFORCE --
and the ledger keeps one :class:`TrialRecord` per candidate in sample
order, preserving trial-ledger semantics.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.architecture import Architecture
from repro.core.controller import (
    Controller,
    ControllerBatch,
    LstmController,
)
from repro.core.evaluator import AccuracyEvaluator, evaluate_many
from repro.core.reward import AccuracyBaseline, FnasReward
from repro.core.search_space import SearchSpace
from repro.latency.estimator import LatencyEstimator


@dataclass(frozen=True)
class TrialRecord:
    """One controller sample and everything that happened to it."""

    index: int
    tokens: tuple[int, ...]
    architecture: Architecture
    latency_ms: float | None
    accuracy: float | None
    reward: float
    trained: bool
    sim_seconds: float

    @property
    def pruned(self) -> bool:
        """True when the FNAS tool rejected the child before training."""
        return not self.trained


@dataclass
class SearchResult:
    """Full ledger of one search run.

    The aggregate properties (:attr:`simulated_seconds`,
    :attr:`trained_count`, :attr:`pruned_count`) fold in newly appended
    trials incrementally, so reading them per trial stays O(1) even for
    large ledgers.  Appending to ``trials`` is supported; in-place
    replacement of existing records is not (truncate-and-rebuild
    instead, which resets the fold).
    """

    name: str
    trials: list[TrialRecord] = field(default_factory=list)
    wall_seconds: float = 0.0
    _agg_len: int = field(default=0, repr=False, compare=False)
    _sim_seconds_sum: float = field(default=0.0, repr=False, compare=False)
    _trained_sum: int = field(default=0, repr=False, compare=False)
    _last_folded: TrialRecord | None = field(
        default=None, repr=False, compare=False
    )

    def _refresh_aggregates(self) -> None:
        """Fold any trials appended since the last aggregate read."""
        n = len(self.trials)
        stale = n < self._agg_len or (
            # Truncated-then-extended between reads: the record at the
            # fold frontier is no longer the one that was folded last.
            self._agg_len > 0
            and self.trials[self._agg_len - 1] is not self._last_folded
        )
        if stale:
            self._agg_len = 0
            self._sim_seconds_sum = 0.0
            self._trained_sum = 0
        for trial in self.trials[self._agg_len:n]:
            self._sim_seconds_sum += trial.sim_seconds
            self._trained_sum += 1 if trial.trained else 0
        self._agg_len = n
        self._last_folded = self.trials[-1] if self.trials else None

    @property
    def simulated_seconds(self) -> float:
        """Total simulated search time (the Table 1 'Elapsed' analogue)."""
        self._refresh_aggregates()
        return self._sim_seconds_sum

    @property
    def trained_count(self) -> int:
        """Children that were actually trained."""
        self._refresh_aggregates()
        return self._trained_sum

    @property
    def pruned_count(self) -> int:
        """Children rejected by the latency check before training."""
        self._refresh_aggregates()
        return len(self.trials) - self._trained_sum

    def best(self) -> TrialRecord:
        """Highest-accuracy trained trial."""
        trained = [t for t in self.trials if t.accuracy is not None]
        if not trained:
            raise ValueError(f"search {self.name!r} trained no children")
        return max(trained, key=lambda t: t.accuracy)

    def best_valid(self, required_latency_ms: float) -> TrialRecord:
        """Highest-accuracy trial whose latency meets ``required_latency_ms``."""
        valid = [
            t for t in self.trials
            if t.accuracy is not None
            and t.latency_ms is not None
            and t.latency_ms <= required_latency_ms
        ]
        if not valid:
            raise ValueError(
                f"search {self.name!r} found no child meeting "
                f"{required_latency_ms}ms"
            )
        return max(valid, key=lambda t: t.accuracy)


def _check_run_args(trials: int, batch_size: int) -> None:
    if trials <= 0:
        raise ValueError(f"trials must be positive, got {trials}")
    if batch_size <= 0:
        raise ValueError(f"batch_size must be positive, got {batch_size}")


def _sample_candidates(
    controller: Controller, rng: np.random.Generator, count: int
) -> ControllerBatch:
    """Draw ``count`` samples, vectorized when the controller supports it."""
    sampler = getattr(controller, "sample_batch", None)
    if sampler is not None:
        return sampler(rng, count)
    return ControllerBatch(
        samples=[controller.sample(rng) for _ in range(count)]
    )


def _update_candidates(
    controller: Controller, batch: ControllerBatch, advantages: list[float]
) -> float:
    """Apply the batch's REINFORCE update; returns the mean loss."""
    updater = getattr(controller, "update_batch", None)
    if updater is not None and batch.cache is not None:
        return updater(batch, advantages)
    total = sum(
        controller.update(sample, advantage)
        for sample, advantage in zip(batch.samples, advantages)
    )
    return total / len(batch)


class NasSearch:
    """Accuracy-only architecture search (the paper's baseline [16])."""

    def __init__(
        self,
        space: SearchSpace,
        evaluator: AccuracyEvaluator,
        controller: Controller | None = None,
        latency_estimator: LatencyEstimator | None = None,
        baseline_decay: float = 0.9,
    ):
        self.space = space
        self.evaluator = evaluator
        self.controller = (
            controller if controller is not None else LstmController(space)
        )
        # NAS ignores latency during search, but the experiments report
        # the latency of its final architecture; an estimator here lets
        # the ledger carry it without affecting the reward.
        self.latency_estimator = latency_estimator
        self.baseline = AccuracyBaseline(decay=baseline_decay)

    def run(
        self,
        trials: int,
        rng: np.random.Generator,
        batch_size: int = 1,
    ) -> SearchResult:
        """Sample, train and update for ``trials`` children.

        ``batch_size=1`` reproduces the sequential seed trajectory
        exactly; larger batches drive the vectorized path.
        """
        _check_run_args(trials, batch_size)
        result = SearchResult(name="nas")
        started = time.perf_counter()
        if batch_size == 1:
            self._run_sequential(trials, rng, result)
        else:
            self._run_batched(trials, rng, batch_size, result)
        result.wall_seconds = time.perf_counter() - started
        return result

    def _run_sequential(
        self, trials: int, rng: np.random.Generator, result: SearchResult
    ) -> None:
        """The original one-candidate-at-a-time loop (seed behaviour)."""
        for index in range(trials):
            sample = self.controller.sample(rng)
            architecture = self.space.decode(sample.tokens)
            outcome = self.evaluator.evaluate(architecture)
            advantage = outcome.accuracy - self.baseline.value
            if not self.baseline.initialized:
                advantage = 0.0
            self.baseline.update(outcome.accuracy)
            self.controller.update(sample, advantage)
            latency_ms = None
            if self.latency_estimator is not None:
                latency_ms = self.latency_estimator.estimate(architecture).ms
            result.trials.append(
                TrialRecord(
                    index=index,
                    tokens=tuple(sample.tokens),
                    architecture=architecture,
                    latency_ms=latency_ms,
                    accuracy=outcome.accuracy,
                    reward=outcome.accuracy,
                    trained=True,
                    sim_seconds=outcome.train_seconds,
                )
            )

    def _run_batched(
        self,
        trials: int,
        rng: np.random.Generator,
        batch_size: int,
        result: SearchResult,
    ) -> None:
        """Batch REINFORCE: one vectorized update per sampled batch."""
        index = 0
        while index < trials:
            count = min(batch_size, trials - index)
            batch = _sample_candidates(self.controller, rng, count)
            architectures = [
                self.space.decode(s.tokens) for s in batch.samples
            ]
            outcomes = evaluate_many(self.evaluator, architectures)
            accuracies = [o.accuracy for o in outcomes]
            # All samples came from the same policy, so one shared
            # reference is the standard batch REINFORCE baseline; before
            # the EMA has seen anything, the batch mean substitutes.
            reference = (
                self.baseline.value if self.baseline.initialized
                else float(np.mean(accuracies))
            )
            advantages = [a - reference for a in accuracies]
            for accuracy in accuracies:
                self.baseline.update(accuracy)
            _update_candidates(self.controller, batch, advantages)
            if self.latency_estimator is not None:
                latencies = [
                    e.ms
                    for e in self.latency_estimator.estimate_batch(architectures)
                ]
            else:
                latencies = [None] * count
            for offset in range(count):
                result.trials.append(
                    TrialRecord(
                        index=index + offset,
                        tokens=tuple(batch.samples[offset].tokens),
                        architecture=architectures[offset],
                        latency_ms=latencies[offset],
                        accuracy=accuracies[offset],
                        reward=accuracies[offset],
                        trained=True,
                        sim_seconds=outcomes[offset].train_seconds,
                    )
                )
            index += count


class FnasSearch:
    """FPGA-implementation aware search (the paper's Figure 2 loop)."""

    def __init__(
        self,
        space: SearchSpace,
        evaluator: AccuracyEvaluator,
        latency_estimator: LatencyEstimator,
        required_latency_ms: float,
        controller: Controller | None = None,
        baseline_decay: float = 0.9,
        min_latency_fallback: bool = False,
    ):
        """``min_latency_fallback``: if the trial budget ends with no
        spec-meeting child trained, evaluate the space's smallest
        (minimum-capacity, hence fastest) architecture as one extra
        ledger entry, so a valid design is returned whenever the spec is
        satisfiable at all."""
        self.space = space
        self.evaluator = evaluator
        self.latency_estimator = latency_estimator
        self.reward_fn = FnasReward(required_latency_ms)
        self.controller = (
            controller if controller is not None else LstmController(space)
        )
        self.baseline = AccuracyBaseline(decay=baseline_decay)
        self.min_latency_fallback = min_latency_fallback

    @property
    def required_latency_ms(self) -> float:
        """The timing specification ``rL``."""
        return self.reward_fn.required_latency_ms

    def run(
        self,
        trials: int,
        rng: np.random.Generator,
        batch_size: int = 1,
    ) -> SearchResult:
        """Run the FNAS loop for ``trials`` children.

        ``batch_size=1`` reproduces the sequential seed trajectory
        exactly; larger batches estimate latencies through the cached
        batch path and train the spec-meeting survivors together.
        """
        _check_run_args(trials, batch_size)
        result = SearchResult(name=f"fnas-{self.required_latency_ms:g}ms")
        started = time.perf_counter()
        if batch_size == 1:
            self._run_sequential(trials, rng, result)
        else:
            self._run_batched(trials, rng, batch_size, result)
        if self.min_latency_fallback and not any(
            t.trained and t.latency_ms is not None
            and t.latency_ms <= self.required_latency_ms
            for t in result.trials
        ):
            self._append_fallback_trial(result)
        result.wall_seconds = time.perf_counter() - started
        return result

    def _run_sequential(
        self, trials: int, rng: np.random.Generator, result: SearchResult
    ) -> None:
        """The original one-candidate-at-a-time loop (seed behaviour)."""
        for index in range(trials):
            sample = self.controller.sample(rng)
            architecture = self.space.decode(sample.tokens)
            latency_ms = self.latency_estimator.estimate(architecture).ms
            sim_seconds = self.evaluator.latency_eval_seconds()
            if self.reward_fn.violates(latency_ms):
                signal = self.reward_fn.violation(latency_ms)
                accuracy = None
                trained = False
                advantage = signal.value
            else:
                outcome = self.evaluator.evaluate(architecture)
                accuracy = outcome.accuracy
                sim_seconds += outcome.train_seconds
                signal = self.reward_fn.satisfaction(
                    accuracy, latency_ms, self.baseline.value
                )
                trained = True
                advantage = signal.value
                self.baseline.update(accuracy)
            self.controller.update(sample, advantage)
            result.trials.append(
                TrialRecord(
                    index=index,
                    tokens=tuple(sample.tokens),
                    architecture=architecture,
                    latency_ms=latency_ms,
                    accuracy=accuracy,
                    reward=signal.value,
                    trained=trained,
                    sim_seconds=sim_seconds,
                )
            )

    def _run_batched(
        self,
        trials: int,
        rng: np.random.Generator,
        batch_size: int,
        result: SearchResult,
    ) -> None:
        """Figure 2's loop over whole batches.

        The latency check partitions each batch: violators are rewarded
        (negatively) straight from eq. (1), survivors are trained --
        together, so a :class:`~repro.core.evaluator.ParallelEvaluator`
        can fan them across processes -- and all candidates share one
        vectorized controller update.
        """
        index = 0
        while index < trials:
            count = min(batch_size, trials - index)
            batch = _sample_candidates(self.controller, rng, count)
            architectures = [
                self.space.decode(s.tokens) for s in batch.samples
            ]
            estimates = self.latency_estimator.estimate_batch(architectures)
            latency_cost = self.evaluator.latency_eval_seconds()
            survivors = [
                offset for offset, estimate in enumerate(estimates)
                if not self.reward_fn.violates(estimate.ms)
            ]
            outcomes = evaluate_many(
                self.evaluator, [architectures[o] for o in survivors]
            )
            outcome_of = dict(zip(survivors, outcomes))
            reference = self.baseline.value
            rewards: list[float] = []
            records: list[TrialRecord] = []
            for offset, estimate in enumerate(estimates):
                latency_ms = estimate.ms
                sim_seconds = latency_cost
                outcome = outcome_of.get(offset)
                if outcome is None:
                    signal = self.reward_fn.violation(latency_ms)
                    accuracy = None
                    trained = False
                else:
                    accuracy = outcome.accuracy
                    sim_seconds += outcome.train_seconds
                    signal = self.reward_fn.satisfaction(
                        accuracy, latency_ms, reference
                    )
                    trained = True
                    self.baseline.update(accuracy)
                rewards.append(signal.value)
                records.append(
                    TrialRecord(
                        index=index + offset,
                        tokens=tuple(batch.samples[offset].tokens),
                        architecture=architectures[offset],
                        latency_ms=latency_ms,
                        accuracy=accuracy,
                        reward=signal.value,
                        trained=trained,
                        sim_seconds=sim_seconds,
                    )
                )
            _update_candidates(self.controller, batch, rewards)
            result.trials.extend(records)
            index += count

    def _append_fallback_trial(self, result: SearchResult) -> None:
        """Train the smallest architecture if it meets the spec."""
        tokens = [0] * self.space.num_decisions
        architecture = self.space.decode(tokens)
        latency_ms = self.latency_estimator.estimate(architecture).ms
        if self.reward_fn.violates(latency_ms):
            return  # the spec is unsatisfiable even by the smallest child
        outcome = self.evaluator.evaluate(architecture)
        signal = self.reward_fn.satisfaction(
            outcome.accuracy, latency_ms, self.baseline.value
        )
        result.trials.append(
            TrialRecord(
                index=len(result.trials),
                tokens=tuple(tokens),
                architecture=architecture,
                latency_ms=latency_ms,
                accuracy=outcome.accuracy,
                reward=signal.value,
                trained=True,
                sim_seconds=(self.evaluator.latency_eval_seconds()
                             + outcome.train_seconds),
            )
        )
