"""RNN controller with REINFORCE (paper Figure 1 / Zoph's NAS).

The controller emits the child network's hyperparameters one decision at
a time: for each layer, a filter-size token then a filter-count token
(Table 2 choice lists).  Two implementations:

* :class:`LstmController` -- the paper-faithful one: a single-layer LSTM
  whose input at step ``t`` is the embedding of the previous decision,
  with one softmax head per decision kind.  Trained by REINFORCE
  (policy gradient ascent on ``advantage * log pi``) with Adam, full
  backpropagation-through-time implemented by hand in NumPy.
* :class:`TabularController` -- independent per-step softmax logits,
  same REINFORCE update.  No recurrence, so it cannot model
  inter-decision correlations, but it is fast, has few knobs, and makes
  convergence behaviour easy to verify in tests.

Both share the :class:`Controller` protocol used by the search loops.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

import numpy as np

from repro.core.search_space import SearchSpace


@dataclass
class ControllerSample:
    """One sampled token sequence plus what the update step needs."""

    tokens: list[int]
    log_prob: float
    cache: object | None = None


@dataclass
class ControllerBatch:
    """A batch of samples drawn together, plus the batched activations.

    ``cache`` holds whatever the controller's vectorized backward pass
    needs (batched, so it cannot live on the individual samples); batches
    assembled from sequential :meth:`Controller.sample` calls carry
    ``cache=None`` and are updated sample-by-sample instead.
    """

    samples: list[ControllerSample]
    cache: object | None = None

    def __len__(self) -> int:
        return len(self.samples)


class Controller(Protocol):
    """Policy over token sequences, updatable from (sample, advantage).

    The batch methods are part of the protocol (every built-in
    controller vectorizes them), but the search loops degrade
    gracefully: a legacy controller implementing only ``sample`` /
    ``update`` still works at any ``batch_size`` via the per-sample
    fallback in :mod:`repro.core.search`.
    """

    def sample(self, rng: np.random.Generator) -> ControllerSample:
        """Draw one token sequence from the current policy."""
        ...

    def update(self, sample: ControllerSample, advantage: float) -> float:
        """One REINFORCE step; returns the policy-gradient loss."""
        ...

    def sample_batch(
        self, rng: np.random.Generator, batch_size: int
    ) -> ControllerBatch:
        """Draw ``batch_size`` token sequences from the current policy."""
        ...

    def update_batch(
        self, batch: ControllerBatch, advantages: list[float]
    ) -> float:
        """One REINFORCE step on the mean per-sample gradient.

        Returns the mean policy-gradient loss.  With a single-sample
        batch this is exactly one :meth:`update` step.
        """
        ...

    def state_dict(self) -> dict:
        """JSON-serializable snapshot of all learnable state.

        Together with :meth:`load_state_dict` this is what makes a
        search checkpointable: restoring the state and the RNG stream
        reproduces the remaining trajectory exactly.  A third-party
        controller without these methods still searches fine but cannot
        be checkpointed.
        """
        ...

    def load_state_dict(self, state: dict) -> None:
        """Restore a snapshot produced by :meth:`state_dict`.

        Must leave the controller byte-identical to the one snapshotted:
        parameters, optimizer moments and step count included.
        """
        ...


def _softmax(logits: np.ndarray) -> np.ndarray:
    shifted = logits - logits.max()
    exp = np.exp(shifted)
    return exp / exp.sum()


def _softmax_rows(logits: np.ndarray) -> np.ndarray:
    shifted = logits - logits.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=1, keepdims=True)


def _choice_rows(rng: np.random.Generator, probs: np.ndarray) -> np.ndarray:
    """Vectorized row-wise categorical draw.

    Mirrors ``Generator.choice(n, p=row)``'s arithmetic (normalised CDF,
    one uniform draw per row, right-bisection) so a one-row batch
    consumes the RNG stream exactly like the sequential sampler.
    """
    cdf = probs.cumsum(axis=1)
    cdf /= cdf[:, -1:]
    u = rng.random(len(probs))
    return (cdf <= u[:, None]).sum(axis=1)


def _check_batch_size(batch_size: int) -> None:
    if batch_size <= 0:
        raise ValueError(f"batch_size must be positive, got {batch_size}")


def _check_advantages(batch: ControllerBatch, advantages) -> np.ndarray:
    advantages = np.asarray(advantages, dtype=float)
    if advantages.shape != (len(batch),):
        raise ValueError(
            f"expected {len(batch)} advantages, got shape {advantages.shape}"
        )
    return advantages


class _AdamState:
    """Adam over a flat list of arrays (controller-sized, batch 1)."""

    def __init__(self, params: list[np.ndarray], lr: float):
        self.params = params
        self.lr = lr
        self.m = [np.zeros_like(p) for p in params]
        self.v = [np.zeros_like(p) for p in params]
        self.t = 0

    def step(self, grads: list[np.ndarray]) -> None:
        """One bias-corrected Adam update over the registered params."""
        self.t += 1
        b1, b2, eps = 0.9, 0.999, 1e-8
        bias1 = 1 - b1**self.t
        bias2 = 1 - b2**self.t
        for p, g, m, v in zip(self.params, grads, self.m, self.v):
            m *= b1
            m += (1 - b1) * g
            v *= b2
            v += (1 - b2) * g * g
            p -= self.lr * (m / bias1) / (np.sqrt(v / bias2) + eps)

    def state_dict(self) -> dict:
        """Optimizer moments and step count as JSON-ready lists."""
        return {
            "t": self.t,
            "m": [m.tolist() for m in self.m],
            "v": [v.tolist() for v in self.v],
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore moments in place (array identities are load-bearing:
        the owning controller's parameter list aliases them)."""
        if len(state["m"]) != len(self.m) or len(state["v"]) != len(self.v):
            raise ValueError(
                f"Adam state has {len(state['m'])} moment arrays, "
                f"expected {len(self.m)}"
            )
        self.t = int(state["t"])
        for target, source in zip(self.m, state["m"]):
            _copy_into(target, source, "Adam first moment")
        for target, source in zip(self.v, state["v"]):
            _copy_into(target, source, "Adam second moment")


def _copy_into(target: np.ndarray, source, what: str) -> None:
    """Copy serialized values into an existing array, shape-checked.

    In-place copy (rather than rebinding) preserves array identity,
    which the Adam optimizer and the controllers' parameter lists rely
    on for gradient routing.
    """
    values = np.asarray(source, dtype=target.dtype)
    if values.shape != target.shape:
        raise ValueError(
            f"{what}: shape {values.shape} does not match {target.shape}"
        )
    target[...] = values


class LstmController:
    """Single-layer LSTM policy with per-decision-kind heads."""

    def __init__(
        self,
        space: SearchSpace,
        hidden_size: int = 32,
        embed_size: int = 16,
        lr: float = 0.01,
        entropy_weight: float = 0.0,
        seed: int = 0,
    ):
        if hidden_size <= 0 or embed_size <= 0:
            raise ValueError("hidden_size and embed_size must be positive")
        if lr <= 0:
            raise ValueError(f"lr must be positive, got {lr}")
        if entropy_weight < 0:
            raise ValueError(
                f"entropy_weight must be >= 0, got {entropy_weight}"
            )
        self.space = space
        self.hidden_size = hidden_size
        self.embed_size = embed_size
        self.entropy_weight = entropy_weight
        rng = np.random.default_rng(seed)
        h, e = hidden_size, embed_size
        scale = 0.1
        # Embedding tables: one per decision kind, plus the start token.
        self.embeddings = {
            kind: rng.normal(0, scale, size=(len(choices), e))
            for kind, choices in self._kind_choices().items()
        }
        self.start_embedding = rng.normal(0, scale, size=(e,))
        # LSTM: z = [h_prev, x] @ W + b; gates i, f, g, o.
        self.w_lstm = rng.normal(0, scale, size=(h + e, 4 * h))
        self.b_lstm = np.zeros(4 * h)
        # Output heads per decision kind.
        self.heads = {
            kind: (
                rng.normal(0, scale, size=(h, len(choices))),
                np.zeros(len(choices)),
            )
            for kind, choices in self._kind_choices().items()
        }
        self._adam = _AdamState(self._param_list(), lr)

    def _kind_choices(self) -> dict[str, tuple]:
        # Derived in per-layer token order: classic spaces yield
        # filter_size then filter_count (the seed's dict order, which
        # also fixes the RNG draw order at init), conv-type-searching
        # spaces prepend conv_type.
        kinds: dict[str, tuple] = {}
        for step in range(self.space.decisions_per_layer):
            kind = self.space.decision_kind(step)
            if kind not in kinds:
                kinds[kind] = self.space.choices_at(step)
        return kinds

    def _param_list(self) -> list[np.ndarray]:
        params = [self.start_embedding, self.w_lstm, self.b_lstm]
        for kind in sorted(self.embeddings):
            params.append(self.embeddings[kind])
        for kind in sorted(self.heads):
            params.extend(self.heads[kind])
        return params

    # -- forward -------------------------------------------------------------

    def sample(
        self,
        rng: np.random.Generator,
        force_tokens: list[int] | None = None,
    ) -> ControllerSample:
        """Sample a token sequence, caching activations for BPTT.

        ``force_tokens`` scores a fixed sequence under the current
        policy instead of sampling (used for off-policy analysis and
        exact log-probability queries).
        """
        if force_tokens is not None and len(force_tokens) != self.space.num_decisions:
            raise ValueError(
                f"force_tokens must have {self.space.num_decisions} entries"
            )
        h = np.zeros(self.hidden_size)
        c = np.zeros(self.hidden_size)
        tokens: list[int] = []
        log_prob = 0.0
        steps: list[dict] = []
        x = self.start_embedding
        prev_kind: str | None = None
        for step in range(self.space.num_decisions):
            kind = self.space.decision_kind(step)
            h_prev, c_prev = h, c
            concat = np.concatenate([h_prev, x])
            z = concat @ self.w_lstm + self.b_lstm
            hs = self.hidden_size
            i = _sigmoid(z[:hs])
            f = _sigmoid(z[hs:2 * hs])
            g = np.tanh(z[2 * hs:3 * hs])
            o = _sigmoid(z[3 * hs:])
            c = f * c_prev + i * g
            tanh_c = np.tanh(c)
            h = o * tanh_c
            w_head, b_head = self.heads[kind]
            logits = h @ w_head + b_head
            probs = _softmax(logits)
            if force_tokens is not None:
                token = force_tokens[step]
            else:
                token = int(rng.choice(len(probs), p=probs))
            log_prob += float(np.log(probs[token] + 1e-12))
            steps.append(
                dict(
                    kind=kind, prev_kind=prev_kind, x=x, concat=concat,
                    i=i, f=f, g=g, o=o, c=c, c_prev=c_prev, tanh_c=tanh_c,
                    h=h, probs=probs, token=token,
                    prev_token=tokens[-1] if tokens else None,
                )
            )
            tokens.append(token)
            x = self.embeddings[kind][token]
            prev_kind = kind
        return ControllerSample(tokens=tokens, log_prob=log_prob, cache=steps)

    def sample_batch(
        self, rng: np.random.Generator, batch_size: int
    ) -> ControllerBatch:
        """Sample ``batch_size`` sequences with one matmul per step.

        The whole batch advances through the LSTM together, so the cost
        of the Python-level recurrence is paid once per step instead of
        once per step per candidate.
        """
        _check_batch_size(batch_size)
        b, hs = batch_size, self.hidden_size
        h = np.zeros((b, hs))
        c = np.zeros((b, hs))
        x = np.repeat(self.start_embedding[None, :], b, axis=0)
        log_probs = np.zeros(b)
        token_rows: list[np.ndarray] = []
        steps: list[dict] = []
        for step in range(self.space.num_decisions):
            kind = self.space.decision_kind(step)
            c_prev = c
            concat = np.concatenate([h, x], axis=1)
            z = concat @ self.w_lstm + self.b_lstm
            i = _sigmoid(z[:, :hs])
            f = _sigmoid(z[:, hs:2 * hs])
            g = np.tanh(z[:, 2 * hs:3 * hs])
            o = _sigmoid(z[:, 3 * hs:])
            c = f * c_prev + i * g
            tanh_c = np.tanh(c)
            h = o * tanh_c
            w_head, b_head = self.heads[kind]
            logits = h @ w_head + b_head
            probs = _softmax_rows(logits)
            toks = _choice_rows(rng, probs)
            log_probs += np.log(probs[np.arange(b), toks] + 1e-12)
            steps.append(
                dict(
                    kind=kind, concat=concat, i=i, f=f, g=g, o=o,
                    c=c, c_prev=c_prev, tanh_c=tanh_c, h=h,
                    probs=probs, tokens=toks,
                )
            )
            token_rows.append(toks)
            x = self.embeddings[kind][toks]
        token_matrix = np.stack(token_rows, axis=1)
        samples = [
            ControllerSample(
                tokens=[int(t) for t in token_matrix[row]],
                log_prob=float(log_probs[row]),
            )
            for row in range(b)
        ]
        return ControllerBatch(samples=samples, cache=steps)

    # -- backward ------------------------------------------------------------

    def update(self, sample: ControllerSample, advantage: float) -> float:
        """REINFORCE step: ascend ``advantage * log pi`` (+ entropy bonus)."""
        steps = sample.cache
        if steps is None:
            raise ValueError("sample has no cached activations; was it "
                             "produced by this controller's sample()?")
        grads = {id(p): np.zeros_like(p) for p in self._param_list()}

        def grad_of(param: np.ndarray) -> np.ndarray:
            return grads[id(param)]

        hs = self.hidden_size
        dh_next = np.zeros(hs)
        dc_next = np.zeros(hs)
        dx_next: np.ndarray | None = None
        loss = 0.0
        for t in range(len(steps) - 1, -1, -1):
            s = steps[t]
            probs, token = s["probs"], s["token"]
            # Loss = -A * log pi - w_H * H; dlogits accordingly.
            one_hot = np.zeros_like(probs)
            one_hot[token] = 1.0
            d_logits = advantage * (probs - one_hot)
            loss += -advantage * float(np.log(probs[token] + 1e-12))
            if self.entropy_weight:
                log_p = np.log(probs + 1e-12)
                entropy = -float((probs * log_p).sum())
                d_logits += self.entropy_weight * probs * (log_p + entropy)
                loss += -self.entropy_weight * entropy
            w_head, b_head = self.heads[s["kind"]]
            grad_of(w_head)[...] += np.outer(s["h"], d_logits)
            grad_of(b_head)[...] += d_logits
            dh = d_logits @ w_head.T + dh_next
            # The *next* step's input embedding was this step's token.
            if dx_next is not None:
                grad_of(self.embeddings[s["kind"]])[token] += dx_next
            # LSTM cell backward.
            do = dh * s["tanh_c"]
            dc = dh * s["o"] * (1 - s["tanh_c"] ** 2) + dc_next
            di = dc * s["g"]
            df = dc * s["c_prev"]
            dg = dc * s["i"]
            dc_next = dc * s["f"]
            dz = np.concatenate([
                di * s["i"] * (1 - s["i"]),
                df * s["f"] * (1 - s["f"]),
                dg * (1 - s["g"] ** 2),
                do * s["o"] * (1 - s["o"]),
            ])
            grad_of(self.w_lstm)[...] += np.outer(s["concat"], dz)
            grad_of(self.b_lstm)[...] += dz
            d_concat = dz @ self.w_lstm.T
            dh_next = d_concat[:hs]
            dx_next = d_concat[hs:]
        if dx_next is not None:
            grad_of(self.start_embedding)[...] += dx_next
        params = self._param_list()
        self._adam.step([grads[id(p)] for p in params])
        return loss

    def update_batch(
        self, batch: ControllerBatch, advantages: list[float]
    ) -> float:
        """Vectorized REINFORCE: one BPTT pass and one Adam step.

        The per-sample gradients are averaged, so the update magnitude
        is comparable across batch sizes; a one-sample batch reproduces
        :meth:`update` exactly.
        """
        adv = _check_advantages(batch, advantages)
        steps = batch.cache
        if steps is None:
            raise ValueError("batch has no cached activations; was it "
                             "produced by this controller's sample_batch()?")
        b = len(batch)
        grads = {id(p): np.zeros_like(p) for p in self._param_list()}

        def grad_of(param: np.ndarray) -> np.ndarray:
            return grads[id(param)]

        hs = self.hidden_size
        rows = np.arange(b)
        dh_next = np.zeros((b, hs))
        dc_next = np.zeros((b, hs))
        dx_next: np.ndarray | None = None
        loss = 0.0
        for t in range(len(steps) - 1, -1, -1):
            s = steps[t]
            probs, tokens = s["probs"], s["tokens"]
            one_hot = np.zeros_like(probs)
            one_hot[rows, tokens] = 1.0
            d_logits = adv[:, None] * (probs - one_hot)
            picked = np.log(probs[rows, tokens] + 1e-12)
            loss += float(-(adv * picked).sum())
            if self.entropy_weight:
                log_p = np.log(probs + 1e-12)
                entropy = -(probs * log_p).sum(axis=1)
                d_logits += self.entropy_weight * probs * (
                    log_p + entropy[:, None]
                )
                loss += -self.entropy_weight * float(entropy.sum())
            w_head, b_head = self.heads[s["kind"]]
            grad_of(w_head)[...] += s["h"].T @ d_logits
            grad_of(b_head)[...] += d_logits.sum(axis=0)
            dh = d_logits @ w_head.T + dh_next
            # The *next* step's input embedding was this step's token.
            if dx_next is not None:
                np.add.at(grad_of(self.embeddings[s["kind"]]), tokens, dx_next)
            # LSTM cell backward.
            do = dh * s["tanh_c"]
            dc = dh * s["o"] * (1 - s["tanh_c"] ** 2) + dc_next
            di = dc * s["g"]
            df = dc * s["c_prev"]
            dg = dc * s["i"]
            dc_next = dc * s["f"]
            dz = np.concatenate([
                di * s["i"] * (1 - s["i"]),
                df * s["f"] * (1 - s["f"]),
                dg * (1 - s["g"] ** 2),
                do * s["o"] * (1 - s["o"]),
            ], axis=1)
            grad_of(self.w_lstm)[...] += s["concat"].T @ dz
            grad_of(self.b_lstm)[...] += dz.sum(axis=0)
            d_concat = dz @ self.w_lstm.T
            dh_next = d_concat[:, :hs]
            dx_next = d_concat[:, hs:]
        if dx_next is not None:
            grad_of(self.start_embedding)[...] += dx_next.sum(axis=0)
        params = self._param_list()
        self._adam.step([grads[id(p)] / b for p in params])
        return loss / b

    # -- checkpointing -------------------------------------------------------

    def state_dict(self) -> dict:
        """All learnable state (weights + Adam) as a JSON-ready dict."""
        return {
            "type": type(self).__name__,
            "start_embedding": self.start_embedding.tolist(),
            "w_lstm": self.w_lstm.tolist(),
            "b_lstm": self.b_lstm.tolist(),
            "embeddings": {
                kind: table.tolist()
                for kind, table in self.embeddings.items()
            },
            "heads": {
                kind: {"w": w.tolist(), "b": b.tolist()}
                for kind, (w, b) in self.heads.items()
            },
            "adam": self._adam.state_dict(),
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore :meth:`state_dict` output into this controller.

        The controller must have been constructed with the same search
        space and sizes; values are copied into the existing arrays so
        the Adam optimizer's aliases stay valid.
        """
        _check_state_type(state, type(self).__name__)
        _copy_into(self.start_embedding, state["start_embedding"],
                   "start_embedding")
        _copy_into(self.w_lstm, state["w_lstm"], "w_lstm")
        _copy_into(self.b_lstm, state["b_lstm"], "b_lstm")
        if set(state["embeddings"]) != set(self.embeddings):
            raise ValueError(
                f"embedding kinds {sorted(state['embeddings'])} do not "
                f"match {sorted(self.embeddings)}"
            )
        if set(state["heads"]) != set(self.heads):
            raise ValueError(
                f"head kinds {sorted(state['heads'])} do not match "
                f"{sorted(self.heads)}"
            )
        for kind, table in state["embeddings"].items():
            _copy_into(self.embeddings[kind], table, f"embeddings[{kind}]")
        for kind, head in state["heads"].items():
            w, b = self.heads[kind]
            _copy_into(w, head["w"], f"heads[{kind}].w")
            _copy_into(b, head["b"], f"heads[{kind}].b")
        self._adam.load_state_dict(state["adam"])


def _check_state_type(state: dict, expected: str) -> None:
    found = state.get("type")
    if found != expected:
        raise ValueError(
            f"state_dict was produced by {found!r}, cannot load into "
            f"{expected}"
        )


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(x, -30, 30)))


class RandomController:
    """Uniform random policy -- the no-learning baseline.

    ``update`` is a no-op; useful for isolating how much of a search
    outcome the REINFORCE learning actually contributes (controller
    ablation) and as a worst-case in tests.
    """

    def __init__(self, space: SearchSpace):
        self.space = space

    def sample(
        self,
        rng: np.random.Generator,
        force_tokens: list[int] | None = None,
    ) -> ControllerSample:
        """Uniform token sequence (or score a fixed one)."""
        if force_tokens is not None:
            tokens = list(force_tokens)
        else:
            tokens = self.space.random_tokens(rng)
        log_prob = -sum(
            float(np.log(len(self.space.choices_at(s))))
            for s in range(self.space.num_decisions)
        )
        return ControllerSample(tokens=tokens, log_prob=log_prob, cache=None)

    def update(self, sample: ControllerSample, advantage: float) -> float:
        """No learning: always returns 0."""
        del sample, advantage
        return 0.0

    def sample_batch(
        self, rng: np.random.Generator, batch_size: int
    ) -> ControllerBatch:
        """``batch_size`` independent uniform samples."""
        _check_batch_size(batch_size)
        return ControllerBatch(
            samples=[self.sample(rng) for _ in range(batch_size)]
        )

    def update_batch(
        self, batch: ControllerBatch, advantages: list[float]
    ) -> float:
        """No learning: always returns 0."""
        _check_advantages(batch, advantages)
        return 0.0

    def state_dict(self) -> dict:
        """Stateless policy: only the type tag."""
        return {"type": type(self).__name__}

    def load_state_dict(self, state: dict) -> None:
        """Stateless policy: verifies the type tag only."""
        _check_state_type(state, type(self).__name__)


class TabularController:
    """Independent softmax logits per decision step (REINFORCE)."""

    def __init__(self, space: SearchSpace, lr: float = 0.15, seed: int = 0):
        if lr <= 0:
            raise ValueError(f"lr must be positive, got {lr}")
        self.space = space
        self.logits = [
            np.zeros(len(space.choices_at(step)))
            for step in range(space.num_decisions)
        ]
        self._adam = _AdamState(self.logits, lr)
        del seed  # deterministic init; kept for interface symmetry

    def sample(
        self,
        rng: np.random.Generator,
        force_tokens: list[int] | None = None,
    ) -> ControllerSample:
        """Sample each step independently (or score ``force_tokens``)."""
        if force_tokens is not None and len(force_tokens) != len(self.logits):
            raise ValueError(
                f"force_tokens must have {len(self.logits)} entries"
            )
        tokens: list[int] = []
        log_prob = 0.0
        for step, step_logits in enumerate(self.logits):
            probs = _softmax(step_logits)
            if force_tokens is not None:
                token = force_tokens[step]
            else:
                token = int(rng.choice(len(probs), p=probs))
            log_prob += float(np.log(probs[token] + 1e-12))
            tokens.append(token)
        return ControllerSample(tokens=tokens, log_prob=log_prob, cache=None)

    def update(self, sample: ControllerSample, advantage: float) -> float:
        """REINFORCE on the per-step categorical distributions."""
        grads = []
        loss = 0.0
        for step_logits, token in zip(self.logits, sample.tokens):
            probs = _softmax(step_logits)
            one_hot = np.zeros_like(probs)
            one_hot[token] = 1.0
            grads.append(advantage * (probs - one_hot))
            loss += -advantage * float(np.log(probs[token] + 1e-12))
        self._adam.step(grads)
        return loss

    def sample_batch(
        self, rng: np.random.Generator, batch_size: int
    ) -> ControllerBatch:
        """Vectorized sampling: one categorical draw batch per step."""
        _check_batch_size(batch_size)
        b = batch_size
        log_probs = np.zeros(b)
        token_rows: list[np.ndarray] = []
        for step_logits in self.logits:
            probs = _softmax(step_logits)
            # Every batch row shares this step's distribution, so compute
            # the CDF once and broadcast against the per-row uniforms --
            # same arithmetic (and RNG stream) as _choice_rows.
            cdf = probs.cumsum()
            cdf /= cdf[-1]
            u = rng.random(b)
            toks = (cdf[None, :] <= u[:, None]).sum(axis=1)
            log_probs += np.log(probs[toks] + 1e-12)
            token_rows.append(toks)
        token_matrix = np.stack(token_rows, axis=1)
        samples = [
            ControllerSample(
                tokens=[int(t) for t in token_matrix[row]],
                log_prob=float(log_probs[row]),
            )
            for row in range(b)
        ]
        return ControllerBatch(samples=samples, cache=token_matrix)

    def update_batch(
        self, batch: ControllerBatch, advantages: list[float]
    ) -> float:
        """One Adam step on the mean per-sample REINFORCE gradient."""
        adv = _check_advantages(batch, advantages)
        b = len(batch)
        tokens = np.asarray([s.tokens for s in batch.samples])
        grads = []
        loss = 0.0
        for step, step_logits in enumerate(self.logits):
            probs = _softmax(step_logits)
            toks = tokens[:, step]
            # mean_b adv_b * (probs - onehot_b), without materialising
            # the (b, n) one-hot matrix.
            grad = probs * adv.mean()
            np.subtract.at(grad, toks, adv / b)
            grads.append(grad)
            loss += float(-(adv * np.log(probs[toks] + 1e-12)).sum()) / b
        self._adam.step(grads)
        return loss

    def state_dict(self) -> dict:
        """Per-step logits plus Adam state as a JSON-ready dict."""
        return {
            "type": type(self).__name__,
            "logits": [step.tolist() for step in self.logits],
            "adam": self._adam.state_dict(),
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore :meth:`state_dict` output (same search space required)."""
        _check_state_type(state, type(self).__name__)
        if len(state["logits"]) != len(self.logits):
            raise ValueError(
                f"state has {len(state['logits'])} logit vectors, "
                f"expected {len(self.logits)}"
            )
        for target, source in zip(self.logits, state["logits"]):
            _copy_into(target, source, "logits")
        self._adam.load_state_dict(state["adam"])


# --- Registry entries -----------------------------------------------------
#
# Factory contract: factory(space, seed) -> Controller.  Plans name
# controllers by these keys (see repro.plans.SearchPlan.controller).

from repro.registry import CONTROLLERS


@CONTROLLERS.register("lstm")
def _lstm_factory(space: SearchSpace, seed: int) -> LstmController:
    """The paper's LSTM policy (the default across all experiments)."""
    return LstmController(space, seed=seed)


@CONTROLLERS.register("tabular")
def _tabular_factory(space: SearchSpace, seed: int) -> TabularController:
    """Independent per-step softmax logits (controller ablation)."""
    return TabularController(space, seed=seed)


@CONTROLLERS.register("random")
def _random_factory(space: SearchSpace, seed: int) -> RandomController:
    """Uniform random policy (no-learning baseline; seed unused)."""
    del seed  # stateless policy: sampling draws from the run's RNG stream
    return RandomController(space)
