"""RNN controller with REINFORCE (paper Figure 1 / Zoph's NAS).

The controller emits the child network's hyperparameters one decision at
a time: for each layer, a filter-size token then a filter-count token
(Table 2 choice lists).  Two implementations:

* :class:`LstmController` -- the paper-faithful one: a single-layer LSTM
  whose input at step ``t`` is the embedding of the previous decision,
  with one softmax head per decision kind.  Trained by REINFORCE
  (policy gradient ascent on ``advantage * log pi``) with Adam, full
  backpropagation-through-time implemented by hand in NumPy.
* :class:`TabularController` -- independent per-step softmax logits,
  same REINFORCE update.  No recurrence, so it cannot model
  inter-decision correlations, but it is fast, has few knobs, and makes
  convergence behaviour easy to verify in tests.

Both share the :class:`Controller` protocol used by the search loops.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

import numpy as np

from repro.core.search_space import SearchSpace


@dataclass
class ControllerSample:
    """One sampled token sequence plus what the update step needs."""

    tokens: list[int]
    log_prob: float
    cache: object | None = None


class Controller(Protocol):
    """Policy over token sequences, updatable from (sample, advantage)."""

    def sample(self, rng: np.random.Generator) -> ControllerSample:
        """Draw one token sequence from the current policy."""
        ...

    def update(self, sample: ControllerSample, advantage: float) -> float:
        """One REINFORCE step; returns the policy-gradient loss."""
        ...


def _softmax(logits: np.ndarray) -> np.ndarray:
    shifted = logits - logits.max()
    exp = np.exp(shifted)
    return exp / exp.sum()


class _AdamState:
    """Adam over a flat list of arrays (controller-sized, batch 1)."""

    def __init__(self, params: list[np.ndarray], lr: float):
        self.params = params
        self.lr = lr
        self.m = [np.zeros_like(p) for p in params]
        self.v = [np.zeros_like(p) for p in params]
        self.t = 0

    def step(self, grads: list[np.ndarray]) -> None:
        self.t += 1
        b1, b2, eps = 0.9, 0.999, 1e-8
        bias1 = 1 - b1**self.t
        bias2 = 1 - b2**self.t
        for p, g, m, v in zip(self.params, grads, self.m, self.v):
            m *= b1
            m += (1 - b1) * g
            v *= b2
            v += (1 - b2) * g * g
            p -= self.lr * (m / bias1) / (np.sqrt(v / bias2) + eps)


class LstmController:
    """Single-layer LSTM policy with per-decision-kind heads."""

    def __init__(
        self,
        space: SearchSpace,
        hidden_size: int = 32,
        embed_size: int = 16,
        lr: float = 0.01,
        entropy_weight: float = 0.0,
        seed: int = 0,
    ):
        if hidden_size <= 0 or embed_size <= 0:
            raise ValueError("hidden_size and embed_size must be positive")
        if lr <= 0:
            raise ValueError(f"lr must be positive, got {lr}")
        if entropy_weight < 0:
            raise ValueError(
                f"entropy_weight must be >= 0, got {entropy_weight}"
            )
        self.space = space
        self.hidden_size = hidden_size
        self.embed_size = embed_size
        self.entropy_weight = entropy_weight
        rng = np.random.default_rng(seed)
        h, e = hidden_size, embed_size
        scale = 0.1
        # Embedding tables: one per decision kind, plus the start token.
        self.embeddings = {
            kind: rng.normal(0, scale, size=(len(choices), e))
            for kind, choices in self._kind_choices().items()
        }
        self.start_embedding = rng.normal(0, scale, size=(e,))
        # LSTM: z = [h_prev, x] @ W + b; gates i, f, g, o.
        self.w_lstm = rng.normal(0, scale, size=(h + e, 4 * h))
        self.b_lstm = np.zeros(4 * h)
        # Output heads per decision kind.
        self.heads = {
            kind: (
                rng.normal(0, scale, size=(h, len(choices))),
                np.zeros(len(choices)),
            )
            for kind, choices in self._kind_choices().items()
        }
        self._adam = _AdamState(self._param_list(), lr)

    def _kind_choices(self) -> dict[str, tuple[int, ...]]:
        return {
            "filter_size": self.space.filter_sizes,
            "filter_count": self.space.filter_counts,
        }

    def _param_list(self) -> list[np.ndarray]:
        params = [self.start_embedding, self.w_lstm, self.b_lstm]
        for kind in sorted(self.embeddings):
            params.append(self.embeddings[kind])
        for kind in sorted(self.heads):
            params.extend(self.heads[kind])
        return params

    # -- forward -------------------------------------------------------------

    def sample(
        self,
        rng: np.random.Generator,
        force_tokens: list[int] | None = None,
    ) -> ControllerSample:
        """Sample a token sequence, caching activations for BPTT.

        ``force_tokens`` scores a fixed sequence under the current
        policy instead of sampling (used for off-policy analysis and
        exact log-probability queries).
        """
        if force_tokens is not None and len(force_tokens) != self.space.num_decisions:
            raise ValueError(
                f"force_tokens must have {self.space.num_decisions} entries"
            )
        h = np.zeros(self.hidden_size)
        c = np.zeros(self.hidden_size)
        tokens: list[int] = []
        log_prob = 0.0
        steps: list[dict] = []
        x = self.start_embedding
        prev_kind: str | None = None
        for step in range(self.space.num_decisions):
            kind = self.space.decision_kind(step)
            h_prev, c_prev = h, c
            concat = np.concatenate([h_prev, x])
            z = concat @ self.w_lstm + self.b_lstm
            hs = self.hidden_size
            i = _sigmoid(z[:hs])
            f = _sigmoid(z[hs:2 * hs])
            g = np.tanh(z[2 * hs:3 * hs])
            o = _sigmoid(z[3 * hs:])
            c = f * c_prev + i * g
            tanh_c = np.tanh(c)
            h = o * tanh_c
            w_head, b_head = self.heads[kind]
            logits = h @ w_head + b_head
            probs = _softmax(logits)
            if force_tokens is not None:
                token = force_tokens[step]
            else:
                token = int(rng.choice(len(probs), p=probs))
            log_prob += float(np.log(probs[token] + 1e-12))
            steps.append(
                dict(
                    kind=kind, prev_kind=prev_kind, x=x, concat=concat,
                    i=i, f=f, g=g, o=o, c=c, c_prev=c_prev, tanh_c=tanh_c,
                    h=h, probs=probs, token=token,
                    prev_token=tokens[-1] if tokens else None,
                )
            )
            tokens.append(token)
            x = self.embeddings[kind][token]
            prev_kind = kind
        return ControllerSample(tokens=tokens, log_prob=log_prob, cache=steps)

    # -- backward ------------------------------------------------------------

    def update(self, sample: ControllerSample, advantage: float) -> float:
        """REINFORCE step: ascend ``advantage * log pi`` (+ entropy bonus)."""
        steps = sample.cache
        if steps is None:
            raise ValueError("sample has no cached activations; was it "
                             "produced by this controller's sample()?")
        grads = {id(p): np.zeros_like(p) for p in self._param_list()}

        def grad_of(param: np.ndarray) -> np.ndarray:
            return grads[id(param)]

        hs = self.hidden_size
        dh_next = np.zeros(hs)
        dc_next = np.zeros(hs)
        dx_next: np.ndarray | None = None
        loss = 0.0
        for t in range(len(steps) - 1, -1, -1):
            s = steps[t]
            probs, token = s["probs"], s["token"]
            # Loss = -A * log pi - w_H * H; dlogits accordingly.
            one_hot = np.zeros_like(probs)
            one_hot[token] = 1.0
            d_logits = advantage * (probs - one_hot)
            loss += -advantage * float(np.log(probs[token] + 1e-12))
            if self.entropy_weight:
                log_p = np.log(probs + 1e-12)
                entropy = -float((probs * log_p).sum())
                d_logits += self.entropy_weight * probs * (log_p + entropy)
                loss += -self.entropy_weight * entropy
            w_head, b_head = self.heads[s["kind"]]
            grad_of(w_head)[...] += np.outer(s["h"], d_logits)
            grad_of(b_head)[...] += d_logits
            dh = d_logits @ w_head.T + dh_next
            # The *next* step's input embedding was this step's token.
            if dx_next is not None:
                grad_of(self.embeddings[s["kind"]])[token] += dx_next
            # LSTM cell backward.
            do = dh * s["tanh_c"]
            dc = dh * s["o"] * (1 - s["tanh_c"] ** 2) + dc_next
            di = dc * s["g"]
            df = dc * s["c_prev"]
            dg = dc * s["i"]
            dc_next = dc * s["f"]
            dz = np.concatenate([
                di * s["i"] * (1 - s["i"]),
                df * s["f"] * (1 - s["f"]),
                dg * (1 - s["g"] ** 2),
                do * s["o"] * (1 - s["o"]),
            ])
            grad_of(self.w_lstm)[...] += np.outer(s["concat"], dz)
            grad_of(self.b_lstm)[...] += dz
            d_concat = dz @ self.w_lstm.T
            dh_next = d_concat[:hs]
            dx_next = d_concat[hs:]
        if dx_next is not None:
            grad_of(self.start_embedding)[...] += dx_next
        params = self._param_list()
        self._adam.step([grads[id(p)] for p in params])
        return loss


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(x, -30, 30)))


class RandomController:
    """Uniform random policy -- the no-learning baseline.

    ``update`` is a no-op; useful for isolating how much of a search
    outcome the REINFORCE learning actually contributes (controller
    ablation) and as a worst-case in tests.
    """

    def __init__(self, space: SearchSpace):
        self.space = space

    def sample(
        self,
        rng: np.random.Generator,
        force_tokens: list[int] | None = None,
    ) -> ControllerSample:
        """Uniform token sequence (or score a fixed one)."""
        if force_tokens is not None:
            tokens = list(force_tokens)
        else:
            tokens = self.space.random_tokens(rng)
        log_prob = -sum(
            float(np.log(len(self.space.choices_at(s))))
            for s in range(self.space.num_decisions)
        )
        return ControllerSample(tokens=tokens, log_prob=log_prob, cache=None)

    def update(self, sample: ControllerSample, advantage: float) -> float:
        """No learning: always returns 0."""
        del sample, advantage
        return 0.0


class TabularController:
    """Independent softmax logits per decision step (REINFORCE)."""

    def __init__(self, space: SearchSpace, lr: float = 0.15, seed: int = 0):
        if lr <= 0:
            raise ValueError(f"lr must be positive, got {lr}")
        self.space = space
        self.logits = [
            np.zeros(len(space.choices_at(step)))
            for step in range(space.num_decisions)
        ]
        self._adam = _AdamState(self.logits, lr)
        del seed  # deterministic init; kept for interface symmetry

    def sample(
        self,
        rng: np.random.Generator,
        force_tokens: list[int] | None = None,
    ) -> ControllerSample:
        """Sample each step independently (or score ``force_tokens``)."""
        if force_tokens is not None and len(force_tokens) != len(self.logits):
            raise ValueError(
                f"force_tokens must have {len(self.logits)} entries"
            )
        tokens: list[int] = []
        log_prob = 0.0
        for step, step_logits in enumerate(self.logits):
            probs = _softmax(step_logits)
            if force_tokens is not None:
                token = force_tokens[step]
            else:
                token = int(rng.choice(len(probs), p=probs))
            log_prob += float(np.log(probs[token] + 1e-12))
            tokens.append(token)
        return ControllerSample(tokens=tokens, log_prob=log_prob, cache=None)

    def update(self, sample: ControllerSample, advantage: float) -> float:
        """REINFORCE on the per-step categorical distributions."""
        grads = []
        loss = 0.0
        for step_logits, token in zip(self.logits, sample.tokens):
            probs = _softmax(step_logits)
            one_hot = np.zeros_like(probs)
            one_hot[token] = 1.0
            grads.append(advantage * (probs - one_hot))
            loss += -advantage * float(np.log(probs[token] + 1e-12))
        self._adam.step(grads)
        return loss
