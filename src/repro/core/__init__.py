"""Core FNAS machinery: architectures, search space, controller, search."""

from repro.core.architecture import Architecture, ConvLayerSpec
from repro.core.controller import (
    Controller,
    ControllerSample,
    LstmController,
    RandomController,
    TabularController,
)
from repro.core.serialization import (
    architecture_from_dict,
    architecture_to_dict,
    load_architecture,
    save_architecture,
    save_search_result,
    search_result_to_dict,
)
from repro.core.evaluator import (
    AccuracyEvaluator,
    EvaluationOutcome,
    SurrogateAccuracyEvaluator,
    TrainedAccuracyEvaluator,
)
from repro.core.reward import AccuracyBaseline, FnasReward, RewardSignal
from repro.core.search import FnasSearch, NasSearch, SearchResult, TrialRecord
from repro.core.search_space import SearchSpace

__all__ = [
    "Architecture",
    "ConvLayerSpec",
    "Controller",
    "ControllerSample",
    "LstmController",
    "RandomController",
    "TabularController",
    "architecture_from_dict",
    "architecture_to_dict",
    "load_architecture",
    "save_architecture",
    "save_search_result",
    "search_result_to_dict",
    "AccuracyEvaluator",
    "EvaluationOutcome",
    "SurrogateAccuracyEvaluator",
    "TrainedAccuracyEvaluator",
    "AccuracyBaseline",
    "FnasReward",
    "RewardSignal",
    "FnasSearch",
    "NasSearch",
    "SearchResult",
    "TrialRecord",
    "SearchSpace",
]
