"""The FNAS reward function (paper equation (1)).

::

    R = (rL - L) / rL - 1                 if L > rL   (violation)
    R = (A - b) + L / rL                  if L <= rL  (satisfaction)

where ``A`` is the child's validation accuracy, ``L`` its estimated
latency, ``rL`` the required latency, and ``b`` an exponential moving
average of previous accuracies (the REINFORCE baseline of Zoph's NAS).

Two properties worth noting:

* the violation branch never needs the accuracy -- this is what lets
  FNAS skip training for violating children entirely;
* in the satisfaction branch, ``L / rL`` grows as the latency
  *approaches* the spec: among valid networks, the reward nudges the
  controller toward the biggest (most accurate) ones that still fit.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class RewardSignal:
    """A computed reward plus the facts it was derived from."""

    value: float
    violated: bool
    latency_ms: float
    accuracy: float | None


class FnasReward:
    """Equation (1), bound to one timing specification."""

    def __init__(self, required_latency_ms: float):
        if required_latency_ms <= 0:
            raise ValueError(
                f"required_latency_ms must be positive, got {required_latency_ms}"
            )
        self.required_latency_ms = required_latency_ms

    def violates(self, latency_ms: float) -> bool:
        """Whether a latency breaks the spec (strict inequality, per eq. 1)."""
        return latency_ms > self.required_latency_ms

    def violation(self, latency_ms: float) -> RewardSignal:
        """First branch: negative reward, no training required."""
        if not self.violates(latency_ms):
            raise ValueError(
                f"latency {latency_ms}ms satisfies the spec "
                f"{self.required_latency_ms}ms; use satisfaction()"
            )
        rl = self.required_latency_ms
        value = (rl - latency_ms) / rl - 1.0
        return RewardSignal(
            value=value, violated=True, latency_ms=latency_ms, accuracy=None
        )

    def satisfaction(
        self, accuracy: float, latency_ms: float, baseline: float
    ) -> RewardSignal:
        """Second branch: accuracy advantage plus the latency-utilisation term."""
        if self.violates(latency_ms):
            raise ValueError(
                f"latency {latency_ms}ms violates the spec "
                f"{self.required_latency_ms}ms; use violation()"
            )
        if not 0.0 <= accuracy <= 1.0:
            raise ValueError(f"accuracy must be in [0, 1], got {accuracy}")
        value = (accuracy - baseline) + latency_ms / self.required_latency_ms
        return RewardSignal(
            value=value, violated=False, latency_ms=latency_ms,
            accuracy=accuracy,
        )


class AccuracyBaseline:
    """Exponential moving average of child accuracies (the paper's ``b``)."""

    def __init__(self, decay: float = 0.9):
        if not 0.0 <= decay < 1.0:
            raise ValueError(f"decay must be in [0, 1), got {decay}")
        self.decay = decay
        self._value: float | None = None

    @property
    def value(self) -> float:
        """Current baseline (0 until the first observation)."""
        return self._value if self._value is not None else 0.0

    @property
    def initialized(self) -> bool:
        """Whether any accuracy has been observed."""
        return self._value is not None

    def update(self, accuracy: float) -> float:
        """Fold one accuracy into the EMA and return the new baseline."""
        if not 0.0 <= accuracy <= 1.0:
            raise ValueError(f"accuracy must be in [0, 1], got {accuracy}")
        if self._value is None:
            self._value = accuracy
        else:
            self._value = self.decay * self._value + (1 - self.decay) * accuracy
        return self._value

    def state_dict(self) -> dict:
        """EMA state as a JSON-ready dict (``value`` is null pre-init)."""
        return {"decay": self.decay, "value": self._value}

    def load_state_dict(self, state: dict) -> None:
        """Restore :meth:`state_dict` output, decay included."""
        self.decay = float(state["decay"])
        value = state["value"]
        self._value = None if value is None else float(value)
