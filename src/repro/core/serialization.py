"""JSON serialization for architectures, search ledgers and checkpoints.

Search runs are expensive; these helpers let users persist ledgers and
reload the winning architectures without keeping Python objects alive:

* :func:`architecture_to_dict` / :func:`architecture_from_dict`
* :func:`trial_to_dict` / :func:`trial_from_dict`
* :func:`search_result_to_dict` / :func:`search_result_from_dict`
  plus the :func:`save_search_result` / :func:`load_search_result` pair

Round-tripping preserves everything needed to rebuild the network
(builder input) and the FPGA design (estimator input).  Every float is
written through :func:`json.dumps`, whose ``repr``-based formatting
round-trips IEEE-754 doubles exactly -- reloading a ledger and saving
it again yields byte-identical JSON, which the checkpoint/resume
machinery relies on.

The second half of the module is that machinery's substrate: RNG stream
capture (:func:`rng_state_to_dict` / :func:`rng_from_state`), estimator
cache statistics, and :func:`atomic_write_json`, which makes snapshot
files crash-safe (a checkpoint is either the complete old file or the
complete new one, never a torn write).
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any

import numpy as np

from repro.core.architecture import Architecture, ConvLayerSpec
from repro.core.search import SearchResult, TrialRecord

#: Schema tag written into every file for forward compatibility.
SCHEMA_VERSION = 1


def architecture_to_dict(architecture: Architecture) -> dict[str, Any]:
    """Architecture -> plain JSON-compatible dict."""
    return {
        "schema": SCHEMA_VERSION,
        "input_size": architecture.input_size,
        "input_channels": architecture.input_channels,
        "num_classes": architecture.num_classes,
        "layers": [
            {
                "kernel": layer.kernel,
                "out_channels": layer.out_channels,
                "stride": layer.stride,
                # Only written for non-standard layers, so pre-existing
                # ledgers of standard architectures stay byte-identical.
                **({"kind": layer.kind} if layer.kind != "standard" else {}),
            }
            for layer in architecture.layers
        ],
    }


def architecture_from_dict(data: dict[str, Any]) -> Architecture:
    """Inverse of :func:`architecture_to_dict`."""
    schema = data.get("schema", SCHEMA_VERSION)
    if schema != SCHEMA_VERSION:
        raise ValueError(f"unsupported schema version {schema}")
    try:
        layers = data["layers"]
        if any(l.get("kind", "standard") != "standard" for l in layers):
            specs = []
            channels = data["input_channels"]
            rows = cols = data["input_size"]
            for l in layers:
                spec = ConvLayerSpec(
                    in_channels=channels,
                    out_channels=l["out_channels"],
                    kernel=l["kernel"],
                    in_rows=rows,
                    in_cols=cols,
                    stride=l.get("stride", 1),
                    kind=l.get("kind", "standard"),
                )
                specs.append(spec)
                channels = spec.out_channels
                rows, cols = spec.out_rows, spec.out_cols
            return Architecture(
                layers=tuple(specs),
                num_classes=data["num_classes"],
                input_channels=data["input_channels"],
                input_size=data["input_size"],
            )
        return Architecture.from_choices(
            filter_sizes=[l["kernel"] for l in layers],
            filter_counts=[l["out_channels"] for l in layers],
            strides=[l.get("stride", 1) for l in layers],
            input_size=data["input_size"],
            input_channels=data["input_channels"],
            num_classes=data["num_classes"],
        )
    except KeyError as missing:
        raise ValueError(f"architecture dict missing field {missing}")


def trial_to_dict(trial: TrialRecord) -> dict[str, Any]:
    """TrialRecord -> plain dict (architecture embedded)."""
    return {
        "index": trial.index,
        "tokens": list(trial.tokens),
        "architecture": architecture_to_dict(trial.architecture),
        "latency_ms": trial.latency_ms,
        "accuracy": trial.accuracy,
        "reward": trial.reward,
        "trained": trial.trained,
        "sim_seconds": trial.sim_seconds,
    }


def search_result_to_dict(result: SearchResult) -> dict[str, Any]:
    """SearchResult -> plain dict with summary fields."""
    return {
        "schema": SCHEMA_VERSION,
        "name": result.name,
        "wall_seconds": result.wall_seconds,
        "simulated_seconds": result.simulated_seconds,
        "trained_count": result.trained_count,
        "pruned_count": result.pruned_count,
        "trials": [trial_to_dict(t) for t in result.trials],
    }


def trial_from_dict(data: dict[str, Any]) -> TrialRecord:
    """Inverse of :func:`trial_to_dict`."""
    try:
        return TrialRecord(
            index=int(data["index"]),
            tokens=tuple(data["tokens"]),
            architecture=architecture_from_dict(data["architecture"]),
            latency_ms=data["latency_ms"],
            accuracy=data["accuracy"],
            reward=data["reward"],
            trained=data["trained"],
            sim_seconds=data["sim_seconds"],
        )
    except KeyError as missing:
        raise ValueError(f"trial dict missing field {missing}")


def search_result_from_dict(data: dict[str, Any]) -> SearchResult:
    """Inverse of :func:`search_result_to_dict`.

    The summary fields (``simulated_seconds`` etc.) are derived state
    and recomputed from the trials on demand, so they are ignored here.
    """
    schema = data.get("schema", SCHEMA_VERSION)
    if schema != SCHEMA_VERSION:
        raise ValueError(f"unsupported schema version {schema}")
    return SearchResult(
        name=data["name"],
        trials=[trial_from_dict(t) for t in data["trials"]],
        wall_seconds=data.get("wall_seconds", 0.0),
    )


def save_search_result(result: SearchResult, path: str | Path) -> None:
    """Write a search ledger to ``path`` as JSON."""
    Path(path).write_text(
        json.dumps(search_result_to_dict(result), indent=2))


def load_search_result(path: str | Path) -> SearchResult:
    """Load a ledger saved via :func:`save_search_result`."""
    return search_result_from_dict(json.loads(Path(path).read_text()))


def load_architecture(path: str | Path) -> Architecture:
    """Load an architecture saved via :func:`save_architecture`."""
    return architecture_from_dict(json.loads(Path(path).read_text()))


def save_architecture(architecture: Architecture, path: str | Path) -> None:
    """Write one architecture to ``path`` as JSON."""
    Path(path).write_text(
        json.dumps(architecture_to_dict(architecture), indent=2))


# -- checkpoint substrate ----------------------------------------------------


def rng_state_to_dict(rng: np.random.Generator) -> dict[str, Any]:
    """Capture a NumPy generator's exact stream position.

    The bit-generator state is a nest of plain ints and strings (NumPy's
    own pickle format), so it survives JSON unchanged -- Python ints are
    arbitrary precision, covering PCG64's 128-bit words.
    """
    return rng.bit_generator.state


def rng_from_state(state: dict[str, Any]) -> np.random.Generator:
    """Rebuild a generator that continues the captured stream exactly."""
    name = state.get("bit_generator", "PCG64")
    try:
        bit_generator_cls = getattr(np.random, name)
    except AttributeError:
        raise ValueError(f"unknown bit generator {name!r}")
    bit_generator = bit_generator_cls()
    bit_generator.state = _intify(state)
    return np.random.Generator(bit_generator)


def _intify(value: Any) -> Any:
    """Recursively coerce numeric leaves to int.

    JSON round-trips large ints exactly, but a state dict that passed
    through another serializer may carry floats; NumPy requires ints.
    """
    if isinstance(value, dict):
        return {k: _intify(v) for k, v in value.items()}
    if isinstance(value, float) and value.is_integer():
        return int(value)
    return value


def cache_stats_to_dict(estimator: Any) -> dict[str, Any] | None:
    """Snapshot a :class:`~repro.latency.estimator.LatencyEstimator`'s
    two-tier cache counters (``None`` when there is no estimator)."""
    if estimator is None:
        return None
    stats = estimator.stats
    layer = estimator.layer_memo_stats
    return {
        "architecture_tier": {
            "hits": stats.hits,
            "misses": stats.misses,
            "evictions": stats.evictions,
        },
        "layer_tier": {"hits": layer.hits, "misses": layer.misses},
    }


def restore_cache_stats(estimator: Any, data: dict[str, Any] | None) -> None:
    """Carry cache counters across a resume, so hit-rate accounting spans
    the whole logical run instead of resetting at each restart."""
    if estimator is None or data is None:
        return
    arch_tier = data["architecture_tier"]
    estimator.stats.hits = int(arch_tier["hits"])
    estimator.stats.misses = int(arch_tier["misses"])
    estimator.stats.evictions = int(arch_tier["evictions"])
    layer_tier = data["layer_tier"]
    estimator.layer_memo_stats.hits = int(layer_tier["hits"])
    estimator.layer_memo_stats.misses = int(layer_tier["misses"])


def atomic_write_json(data: Any, path: str | Path) -> None:
    """Write JSON so readers never observe a torn file.

    The payload lands in a same-directory temporary file first and is
    moved over ``path`` with :func:`os.replace`, which is atomic on
    POSIX and Windows.  A crash mid-write leaves the previous checkpoint
    intact -- the property the campaign runner's re-queue-from-last-
    checkpoint recovery depends on.
    """
    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(json.dumps(data, indent=2))
    os.replace(tmp, path)
