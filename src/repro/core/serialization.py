"""JSON serialization for architectures and search ledgers.

Search runs are expensive; these helpers let users persist ledgers and
reload the winning architectures without keeping Python objects alive:

* :func:`architecture_to_dict` / :func:`architecture_from_dict`
* :func:`trial_to_dict`
* :func:`search_result_to_dict` / :func:`save_search_result`

Round-tripping preserves everything needed to rebuild the network
(builder input) and the FPGA design (estimator input); controller state
is deliberately not serialized (re-searching beats resuming a policy
whose reward landscape may have changed).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.core.architecture import Architecture, ConvLayerSpec
from repro.core.search import SearchResult, TrialRecord

#: Schema tag written into every file for forward compatibility.
SCHEMA_VERSION = 1


def architecture_to_dict(architecture: Architecture) -> dict[str, Any]:
    """Architecture -> plain JSON-compatible dict."""
    return {
        "schema": SCHEMA_VERSION,
        "input_size": architecture.input_size,
        "input_channels": architecture.input_channels,
        "num_classes": architecture.num_classes,
        "layers": [
            {
                "kernel": layer.kernel,
                "out_channels": layer.out_channels,
                "stride": layer.stride,
            }
            for layer in architecture.layers
        ],
    }


def architecture_from_dict(data: dict[str, Any]) -> Architecture:
    """Inverse of :func:`architecture_to_dict`."""
    schema = data.get("schema", SCHEMA_VERSION)
    if schema != SCHEMA_VERSION:
        raise ValueError(f"unsupported schema version {schema}")
    try:
        layers = data["layers"]
        return Architecture.from_choices(
            filter_sizes=[l["kernel"] for l in layers],
            filter_counts=[l["out_channels"] for l in layers],
            strides=[l.get("stride", 1) for l in layers],
            input_size=data["input_size"],
            input_channels=data["input_channels"],
            num_classes=data["num_classes"],
        )
    except KeyError as missing:
        raise ValueError(f"architecture dict missing field {missing}")


def trial_to_dict(trial: TrialRecord) -> dict[str, Any]:
    """TrialRecord -> plain dict (architecture embedded)."""
    return {
        "index": trial.index,
        "tokens": list(trial.tokens),
        "architecture": architecture_to_dict(trial.architecture),
        "latency_ms": trial.latency_ms,
        "accuracy": trial.accuracy,
        "reward": trial.reward,
        "trained": trial.trained,
        "sim_seconds": trial.sim_seconds,
    }


def search_result_to_dict(result: SearchResult) -> dict[str, Any]:
    """SearchResult -> plain dict with summary fields."""
    return {
        "schema": SCHEMA_VERSION,
        "name": result.name,
        "wall_seconds": result.wall_seconds,
        "simulated_seconds": result.simulated_seconds,
        "trained_count": result.trained_count,
        "pruned_count": result.pruned_count,
        "trials": [trial_to_dict(t) for t in result.trials],
    }


def save_search_result(result: SearchResult, path: str | Path) -> None:
    """Write a search ledger to ``path`` as JSON."""
    Path(path).write_text(
        json.dumps(search_result_to_dict(result), indent=2))


def load_architecture(path: str | Path) -> Architecture:
    """Load an architecture saved via :func:`save_architecture`."""
    return architecture_from_dict(json.loads(Path(path).read_text()))


def save_architecture(architecture: Architecture, path: str | Path) -> None:
    """Write one architecture to ``path`` as JSON."""
    Path(path).write_text(
        json.dumps(architecture_to_dict(architecture), indent=2))
