"""Convolutional architecture model.

The NAS controller emits a sequence of hyperparameters -- per layer a
filter size and a filter count (Table 2 of the paper) -- which this
module turns into a concrete, shape-checked convolutional network
description.  The description is deliberately framework-neutral: the
same :class:`Architecture` feeds

* the FPGA path (``repro.fpga`` tiling, ``repro.taskgraph``,
  ``repro.latency``) for latency estimation, and
* the training path (``repro.nn.builder``) for accuracy evaluation.

Shapes follow the paper's accelerator convention: convolutions use
"same" padding at stride 1 unless a stride is specified, so the spatial
dims of layer ``i``'s output feature map are ``ceil(R_in / stride)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field


@dataclass(frozen=True)
class ConvLayerSpec:
    """One convolutional layer as seen by both the FPGA and NN paths.

    Attributes:
        in_channels:  number of input feature-map channels (paper's ``N``).
        out_channels: number of output feature-map channels (paper's ``M``).
        kernel:       square filter height/width (``Kh = Kw``).
        in_rows/in_cols:   input feature-map spatial size.
        out_rows/out_cols: output feature-map spatial size (``R`` x ``C``).
        stride:       convolution stride.
        kind:         ``"standard"`` (dense cross-channel conv) or
            ``"depthwise"`` (one filter per channel; requires
            ``out_channels == in_channels``).
    """

    STANDARD = "standard"
    DEPTHWISE = "depthwise"
    KINDS = (STANDARD, DEPTHWISE)

    in_channels: int
    out_channels: int
    kernel: int
    in_rows: int
    in_cols: int
    stride: int = 1
    kind: str = "standard"

    def __post_init__(self) -> None:
        for attr in ("in_channels", "out_channels", "kernel", "in_rows",
                     "in_cols", "stride"):
            value = getattr(self, attr)
            if value <= 0:
                raise ValueError(f"{attr} must be positive, got {value}")
        if self.kernel > self.in_rows or self.kernel > self.in_cols:
            raise ValueError(
                f"kernel {self.kernel} exceeds input size "
                f"{self.in_rows}x{self.in_cols}"
            )
        if self.kind not in self.KINDS:
            raise ValueError(
                f"kind must be one of {self.KINDS}, got {self.kind!r}"
            )
        if self.kind == self.DEPTHWISE and (
            self.out_channels != self.in_channels
        ):
            raise ValueError(
                f"depthwise layers keep the channel count: in_channels "
                f"{self.in_channels} != out_channels {self.out_channels}"
            )

    @property
    def is_depthwise(self) -> bool:
        """True for depthwise (per-channel) convolutions."""
        return self.kind == self.DEPTHWISE

    @property
    def out_rows(self) -> int:
        """Output feature-map rows (same padding)."""
        return math.ceil(self.in_rows / self.stride)

    @property
    def out_cols(self) -> int:
        """Output feature-map columns (same padding)."""
        return math.ceil(self.in_cols / self.stride)

    @property
    def macs(self) -> int:
        """Multiply-accumulate operations for one inference of this layer."""
        if self.kind == self.DEPTHWISE:
            return (self.kernel * self.kernel * self.in_channels
                    * self.out_rows * self.out_cols)
        return (self.kernel * self.kernel * self.in_channels
                * self.out_channels * self.out_rows * self.out_cols)

    @property
    def weight_count(self) -> int:
        """Number of convolution weights (no bias)."""
        if self.kind == self.DEPTHWISE:
            return self.kernel * self.kernel * self.in_channels
        return self.kernel * self.kernel * self.in_channels * self.out_channels

    @property
    def ofm_size(self) -> int:
        """Number of output feature-map elements."""
        return self.out_channels * self.out_rows * self.out_cols

    @property
    def ifm_size(self) -> int:
        """Number of input feature-map elements."""
        return self.in_channels * self.in_rows * self.in_cols


@dataclass(frozen=True)
class Architecture:
    """A complete child network: a chain of conv layers plus a classifier.

    The classifier (global average pool + dense) is implied and not part
    of the FPGA pipeline model, matching the paper's focus on the
    convolutional pipeline.

    Build instances with :meth:`from_choices`, which derives the
    layer-to-layer shape plumbing from the raw hyperparameter choices.
    """

    layers: tuple[ConvLayerSpec, ...]
    num_classes: int
    input_channels: int
    input_size: int

    def __post_init__(self) -> None:
        if not self.layers:
            raise ValueError("an Architecture needs at least one conv layer")
        if self.num_classes < 2:
            raise ValueError(f"num_classes must be >= 2, got {self.num_classes}")
        prev_channels = self.input_channels
        prev_rows, prev_cols = self.input_size, self.input_size
        for idx, layer in enumerate(self.layers):
            if layer.in_channels != prev_channels:
                raise ValueError(
                    f"layer {idx}: in_channels {layer.in_channels} does not "
                    f"match previous layer's out_channels {prev_channels}"
                )
            if (layer.in_rows, layer.in_cols) != (prev_rows, prev_cols):
                raise ValueError(
                    f"layer {idx}: input size {layer.in_rows}x{layer.in_cols} "
                    f"does not match previous output {prev_rows}x{prev_cols}"
                )
            prev_channels = layer.out_channels
            prev_rows, prev_cols = layer.out_rows, layer.out_cols

    @classmethod
    def from_choices(
        cls,
        filter_sizes: list[int] | tuple[int, ...],
        filter_counts: list[int] | tuple[int, ...],
        input_size: int,
        input_channels: int = 1,
        num_classes: int = 10,
        strides: list[int] | tuple[int, ...] | None = None,
        conv_types: list[str] | tuple[str, ...] | None = None,
    ) -> "Architecture":
        """Build an architecture from per-layer hyperparameter choices.

        ``filter_sizes[i]`` and ``filter_counts[i]`` are layer ``i``'s
        kernel size and output channel count.  Kernels larger than the
        current feature map are clamped down to it (the paper's MNIST
        space includes 14x14 kernels which stop fitting after strided
        layers; clamping keeps every controller sample valid).

        ``conv_types[i]`` selects the layer family: ``"standard"``
        (the default, one dense conv layer) or ``"separable"``, which
        expands MobileNet-style into a depthwise ``KxK`` conv keeping
        the channel count (carrying the stride) followed by a ``1x1``
        pointwise conv projecting to ``filter_counts[i]`` channels.
        """
        if len(filter_sizes) != len(filter_counts):
            raise ValueError(
                f"filter_sizes ({len(filter_sizes)}) and filter_counts "
                f"({len(filter_counts)}) must have the same length"
            )
        if strides is None:
            strides = [1] * len(filter_sizes)
        if len(strides) != len(filter_sizes):
            raise ValueError(
                f"strides ({len(strides)}) must match layer count "
                f"({len(filter_sizes)})"
            )
        if conv_types is None:
            conv_types = ["standard"] * len(filter_sizes)
        if len(conv_types) != len(filter_sizes):
            raise ValueError(
                f"conv_types ({len(conv_types)}) must match layer count "
                f"({len(filter_sizes)})"
            )
        layers = []
        channels = input_channels
        rows = cols = input_size
        for kernel, count, stride, conv_type in zip(
            filter_sizes, filter_counts, strides, conv_types
        ):
            kernel = min(kernel, rows, cols)
            if conv_type == "standard":
                expansion = [ConvLayerSpec(
                    in_channels=channels,
                    out_channels=count,
                    kernel=kernel,
                    in_rows=rows,
                    in_cols=cols,
                    stride=stride,
                )]
            elif conv_type == "separable":
                depthwise = ConvLayerSpec(
                    in_channels=channels,
                    out_channels=channels,
                    kernel=kernel,
                    in_rows=rows,
                    in_cols=cols,
                    stride=stride,
                    kind=ConvLayerSpec.DEPTHWISE,
                )
                pointwise = ConvLayerSpec(
                    in_channels=channels,
                    out_channels=count,
                    kernel=1,
                    in_rows=depthwise.out_rows,
                    in_cols=depthwise.out_cols,
                    stride=1,
                )
                expansion = [depthwise, pointwise]
            else:
                raise ValueError(
                    f"unknown conv type {conv_type!r}; "
                    f"expected 'standard' or 'separable'"
                )
            for layer in expansion:
                layers.append(layer)
                channels = layer.out_channels
                rows, cols = layer.out_rows, layer.out_cols
        return cls(
            layers=tuple(layers),
            num_classes=num_classes,
            input_channels=input_channels,
            input_size=input_size,
        )

    @property
    def depth(self) -> int:
        """Number of convolutional layers."""
        return len(self.layers)

    @property
    def total_macs(self) -> int:
        """Total conv MACs for one inference."""
        return sum(layer.macs for layer in self.layers)

    @property
    def total_weights(self) -> int:
        """Total conv weights."""
        return sum(layer.weight_count for layer in self.layers)

    @property
    def filter_sizes(self) -> tuple[int, ...]:
        """Per-layer kernel sizes (after any clamping)."""
        return tuple(layer.kernel for layer in self.layers)

    @property
    def filter_counts(self) -> tuple[int, ...]:
        """Per-layer output channel counts."""
        return tuple(layer.out_channels for layer in self.layers)

    def describe(self) -> str:
        """Human-readable one-line summary, e.g. ``5x5/18 -> 7x7dw/36``."""
        parts = [
            f"{l.kernel}x{l.kernel}{'dw' if l.is_depthwise else ''}"
            f"/{l.out_channels}"
            for l in self.layers
        ]
        return " -> ".join(parts)

    def fingerprint(self) -> str:
        """Stable hash key identifying the architecture.

        Used by caches and by the accuracy surrogate to derive
        architecture-specific (but reproducible) noise.  Standard
        layers keep the seed's three-part field so existing
        fingerprints (and everything keyed off them -- shard ids, the
        surrogate's noise) are unchanged; depthwise layers append a
        ``dw`` marker.
        """
        fields: list[str] = [str(self.input_size), str(self.input_channels),
                             str(self.num_classes)]
        for l in self.layers:
            part = f"{l.kernel}.{l.out_channels}.{l.stride}"
            if l.is_depthwise:
                part += ".dw"
            fields.append(part)
        return "|".join(fields)
