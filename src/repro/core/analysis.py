"""Search-ledger diagnostics.

Post-hoc analysis of :class:`~repro.core.search.SearchResult` ledgers:
learning curves, violation rates, and exploration statistics.  These
back the controller ablation and give users the plots-worth-of-numbers
the paper summarises qualitatively ("the controller will be guided to
avoid searching architectures that have insufficient performance").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.search import SearchResult


def violation_rate_curve(
    result: SearchResult, window: int = 10
) -> list[float]:
    """Moving fraction of spec-violating (pruned) trials.

    A learning FNAS controller should drive this toward zero.
    """
    if window <= 0:
        raise ValueError(f"window must be positive, got {window}")
    flags = [1.0 if t.pruned else 0.0 for t in result.trials]
    curve = []
    for i in range(len(flags)):
        lo = max(0, i - window + 1)
        curve.append(float(np.mean(flags[lo:i + 1])))
    return curve


def reward_curve(result: SearchResult, window: int = 10) -> list[float]:
    """Moving average of the reward signal."""
    if window <= 0:
        raise ValueError(f"window must be positive, got {window}")
    rewards = [t.reward for t in result.trials]
    curve = []
    for i in range(len(rewards)):
        lo = max(0, i - window + 1)
        curve.append(float(np.mean(rewards[lo:i + 1])))
    return curve


def best_accuracy_curve(result: SearchResult) -> list[float]:
    """Running best trained accuracy (NaN until the first training)."""
    best = float("nan")
    curve = []
    for trial in result.trials:
        if trial.accuracy is not None:
            if np.isnan(best) or trial.accuracy > best:
                best = trial.accuracy
        curve.append(best)
    return curve


def unique_architecture_count(result: SearchResult) -> int:
    """Distinct architectures sampled (exploration diagnostic)."""
    return len({t.architecture.fingerprint() for t in result.trials})


@dataclass(frozen=True)
class SearchSummary:
    """One-glance numbers for a finished search."""

    name: str
    trials: int
    trained: int
    pruned: int
    unique_architectures: int
    best_accuracy: float | None
    best_latency_ms: float | None
    final_violation_rate: float
    simulated_seconds: float

    def format(self) -> str:
        """Multi-line human-readable summary."""
        acc = ("-" if self.best_accuracy is None
               else f"{100 * self.best_accuracy:.2f}%")
        lat = ("-" if self.best_latency_ms is None
               else f"{self.best_latency_ms:.2f}ms")
        return (
            f"search {self.name}: {self.trials} trials "
            f"({self.trained} trained / {self.pruned} pruned, "
            f"{self.unique_architectures} unique)\n"
            f"  best accuracy {acc} @ {lat}; "
            f"final violation rate {100 * self.final_violation_rate:.0f}%; "
            f"simulated cost {self.simulated_seconds:.0f}s"
        )


def summarize(result: SearchResult, window: int = 10) -> SearchSummary:
    """Build a :class:`SearchSummary` from a ledger."""
    trained = [t for t in result.trials if t.accuracy is not None]
    best = max(trained, key=lambda t: t.accuracy) if trained else None
    violation_curve = violation_rate_curve(result, window)
    return SearchSummary(
        name=result.name,
        trials=len(result.trials),
        trained=result.trained_count,
        pruned=result.pruned_count,
        unique_architectures=unique_architecture_count(result),
        best_accuracy=best.accuracy if best else None,
        best_latency_ms=best.latency_ms if best else None,
        final_violation_rate=violation_curve[-1] if violation_curve else 0.0,
        simulated_seconds=result.simulated_seconds,
    )
