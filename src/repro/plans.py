"""Declarative run plans: one serializable description of any run.

The public API of this reproduction is organised around a **RunPlan**
tree of plain frozen dataclasses:

* :class:`SearchPlan` -- *how* each search runs: registry keys for the
  controller / evaluator / latency estimator, the base seed and the
  trial budget.
* :class:`ExecutionPolicy` -- *with what resources*: batch size,
  child-evaluation workers, shard workers, checkpoint cadence and
  directory.  Purely an execution concern: changing it never changes a
  trial ledger.
* :class:`ScenarioPlan` -- *over what*: datasets x devices x timing
  specs (plus seeds, board counts and the shared surrogate landscape).
* :class:`RunPlan` -- a workload name plus the three parts above.

Every node round-trips losslessly through ``to_dict()`` /
``from_dict()`` and therefore through JSON (:func:`save_plan` /
:func:`load_plan`), so a plan dumped by one process -- e.g. via the CLI's
``--dump-plan`` -- rebuilds the byte-identical run anywhere
(``repro run plan.json``).  Component names are validated against
:mod:`repro.registry` at construction time, so a typo fails in the
submitting process, not in a worker.

Execution lives elsewhere: hand a plan to
:class:`repro.api.Session` to run it.
"""

from __future__ import annotations

import dataclasses
import difflib
import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

#: Plan document schema tag (bumped on incompatible layout changes).
PLAN_SCHEMA = 1

#: Service execution back-ends a plan may request.
EXECUTION_BACKENDS = ("thread", "process")

#: Workloads a plan can describe -- one per CLI search command.
WORKLOADS = (
    "table1",
    "figure6",
    "figure7",
    "figure8",
    "figure9",
    "ablations",
    "report",
    "sweep",
    "paired",
    "search",
)


def spec_key(spec_ms: float) -> str:
    """Stable string form of a timing spec, for JSON object keys.

    JSON stringifies float dict keys on the way out and cannot turn
    them back into floats on the way in; artifacts therefore key FNAS
    results by ``spec_key(spec)`` (``"2.5"``, ``"10"``) instead of the
    raw float.  Integral specs drop the trailing ``.0`` for
    readability; everything else uses ``repr``'s shortest exact
    round-trip form, so ``float(spec_key(s)) == s`` for *every* float
    and distinct specs never collide.
    """
    value = float(spec_ms)
    if value.is_integer():
        return str(int(value))
    return repr(value)


@dataclass(frozen=True)
class SearchPlan:
    """How each individual search runs.

    Attributes:
        controller: :data:`repro.registry.CONTROLLERS` key
            (``"lstm"``, ``"tabular"``, ``"random"``, or third-party).
        evaluator: :data:`repro.registry.EVALUATORS` key
            (``"surrogate"`` or ``"trained"``).
        estimator: :data:`repro.registry.ESTIMATORS` key
            (``"analytical"`` or ``"simulate"``).
        seed: base RNG / controller-initialisation seed; paired runs
            derive each FNAS search's seed as ``seed + spec offset``.
        trials: children per search (``None``: the dataset's Table 2
            count).
        min_latency_fallback: FNAS-only; train the smallest child when
            no sampled one meets the spec.
    """

    controller: str = "lstm"
    evaluator: str = "surrogate"
    estimator: str = "analytical"
    seed: int = 0
    trials: int | None = None
    min_latency_fallback: bool = True

    def __post_init__(self) -> None:
        from repro import registry

        registry.CONTROLLERS[self.controller]
        registry.EVALUATORS[self.evaluator]
        registry.ESTIMATORS[self.estimator]
        if self.trials is not None and self.trials <= 0:
            raise ValueError(f"trials must be positive, got {self.trials}")

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form (JSON-compatible)."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "SearchPlan":
        """Inverse of :meth:`to_dict`; rejects unknown keys."""
        return cls(**_checked(cls, data, section="search"))


@dataclass(frozen=True)
class ExecutionPolicy:
    """Resource and durability policy -- never trajectory-relevant.

    Attributes:
        batch_size: candidates per controller step (1 reproduces the
            sequential published trajectories).
        eval_workers: process-pool workers for child evaluation inside
            a search (1 = in-process).
        shard_workers: how many whole searches run concurrently in
            campaign mode (1 = serial).
        shard_batch_trials: batch small campaign shards -- those whose
            resolved trial count falls below this threshold -- together
            per worker-pool submission, so grids of tiny shards
            amortize dispatch overhead (``None``: every shard
            dispatches individually).  Execution-only: batching never
            changes any shard's ledger.
        checkpoint_dir: snapshot searches under this directory and
            resume them from existing snapshots; ``None`` disables
            durability.
        checkpoint_every: trials between snapshots (``None``: ~10 per
            search).
        backend: how a :class:`~repro.service.SearchService` job
            running this plan executes -- ``"thread"`` (in the worker
            thread, the B=1-style exactness default), ``"process"``
            (in a dedicated subprocess, so GIL-bound searches scale
            with cores), or ``None`` to inherit the executing
            service's default.  Like every execution field it never
            changes a trial ledger.
        lease_seconds: when the job runs on a remote worker agent, how
            long its lease lives without a heartbeat renewal before
            the coordinator reclaims it and the job re-queues
            (``None``: the coordinator's default).  Durability, never
            trajectory: an expired-and-resumed job stores bytes
            identical to an uninterrupted one.
        heartbeat_seconds: the heartbeat cadence the coordinator
            advertises to the agent holding this job's lease
            (``None``: derived from the lease term).  Must leave room
            for several heartbeats per lease term.
    """

    batch_size: int = 1
    eval_workers: int = 1
    shard_workers: int = 1
    shard_batch_trials: int | None = None
    checkpoint_dir: str | None = None
    checkpoint_every: int | None = None
    backend: str | None = None
    lease_seconds: float | None = None
    heartbeat_seconds: float | None = None

    def __post_init__(self) -> None:
        for name in ("batch_size", "eval_workers", "shard_workers"):
            value = getattr(self, name)
            if not isinstance(value, int) or value <= 0:
                raise ValueError(f"{name} must be a positive int, got {value!r}")
        if self.shard_batch_trials is not None and (
                not isinstance(self.shard_batch_trials, int)
                or self.shard_batch_trials <= 0):
            raise ValueError(
                f"shard_batch_trials must be a positive int or None, "
                f"got {self.shard_batch_trials!r}"
            )
        if self.backend is not None and self.backend not in EXECUTION_BACKENDS:
            raise ValueError(
                f"unknown backend {self.backend!r}; expected one of "
                + ", ".join(EXECUTION_BACKENDS) + " (or None to inherit)"
            )
        for name in ("lease_seconds", "heartbeat_seconds"):
            value = getattr(self, name)
            if value is not None:
                if not isinstance(value, (int, float)) or value <= 0:
                    raise ValueError(
                        f"{name} must be a positive number, got {value!r}"
                    )
                object.__setattr__(self, name, float(value))
        if (self.lease_seconds is not None
                and self.heartbeat_seconds is not None
                and self.heartbeat_seconds >= self.lease_seconds):
            raise ValueError(
                f"heartbeat_seconds ({self.heartbeat_seconds}) must be "
                f"shorter than lease_seconds ({self.lease_seconds}); a "
                "lease needs room for at least one renewal"
            )
        if self.checkpoint_every is not None and self.checkpoint_every <= 0:
            raise ValueError(
                f"checkpoint_every must be positive, got {self.checkpoint_every}"
            )
        if self.checkpoint_every is not None and self.checkpoint_dir is None:
            raise ValueError(
                "checkpoint_every without a checkpoint_dir would snapshot "
                "nowhere; set both"
            )

    @property
    def campaign_mode(self) -> bool:
        """Whether this policy asks for the durable campaign runtime."""
        return self.checkpoint_dir is not None or self.shard_workers > 1

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form (JSON-compatible)."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ExecutionPolicy":
        """Inverse of :meth:`to_dict`; rejects unknown keys."""
        return cls(**_checked(cls, data, section="execution"))


@dataclass(frozen=True)
class ScenarioPlan:
    """What the run sweeps over: datasets x devices x specs.

    Empty tuples mean "the workload's canonical choice" -- ``table1``
    defaults to MNIST on the PYNQ with the paper's three specs,
    ``figure6`` to its two devices, and so on -- so canonical
    reproductions stay one-liners while still serializing explicitly.

    Attributes:
        datasets: Table 2 dataset names.
        devices: :data:`repro.registry.DEVICES` catalog names.
        boards: copies of each device forming the platform.
        seeds: seeds for sweep grids (empty: the search plan's seed).
        specs_ms: FNAS timing specs in ms (empty: workload defaults).
        include_nas: also run the accuracy-only NAS baseline (sweep
            grids; paired workloads always run it).
        surrogate_seed: shared surrogate-landscape seed (``None``:
            derived -- the search seed for single runs, 0 for sweep
            grids, keeping results comparable across shards).
    """

    datasets: tuple[str, ...] = ()
    devices: tuple[str, ...] = ()
    boards: int = 1
    seeds: tuple[int, ...] = ()
    specs_ms: tuple[float, ...] = ()
    include_nas: bool = False
    surrogate_seed: int | None = None

    def __post_init__(self) -> None:
        # Normalise JSON lists to tuples so frozen equality works.
        object.__setattr__(self, "datasets", tuple(self.datasets))
        object.__setattr__(self, "devices", tuple(self.devices))
        object.__setattr__(self, "seeds", tuple(int(s) for s in self.seeds))
        object.__setattr__(
            self, "specs_ms", tuple(float(s) for s in self.specs_ms)
        )
        if self.boards <= 0:
            raise ValueError(f"boards must be positive, got {self.boards}")
        if any(s <= 0 for s in self.specs_ms):
            raise ValueError(f"specs_ms must be positive: {self.specs_ms}")
        from repro import configs, registry

        for dataset in self.datasets:
            configs.get_config(dataset)
        for device in self.devices:
            registry.DEVICES[device]

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form (tuples as JSON lists)."""
        data = dataclasses.asdict(self)
        data["datasets"] = list(self.datasets)
        data["devices"] = list(self.devices)
        data["seeds"] = list(self.seeds)
        data["specs_ms"] = list(self.specs_ms)
        return data

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ScenarioPlan":
        """Inverse of :meth:`to_dict`; rejects unknown keys."""
        return cls(**_checked(cls, data, section="scenario"))


@dataclass(frozen=True)
class RunPlan:
    """One complete, serializable description of a run.

    Attributes:
        workload: one of :data:`WORKLOADS` -- which experiment or
            engine consumes the plan.
        search: per-search configuration.
        execution: resource / durability policy.
        scenario: the swept grid.
        output: optional artifact path the workload writes (the sweep's
            merged campaign JSON, the report's markdown).
    """

    workload: str = "paired"
    search: SearchPlan = field(default_factory=SearchPlan)
    execution: ExecutionPolicy = field(default_factory=ExecutionPolicy)
    scenario: ScenarioPlan = field(default_factory=ScenarioPlan)
    output: str | None = None

    def __post_init__(self) -> None:
        if self.workload not in WORKLOADS:
            raise ValueError(
                f"unknown workload {self.workload!r}; expected one of "
                + ", ".join(WORKLOADS)
            )

    def to_dict(self) -> dict[str, Any]:
        """The JSON plan document (schema-tagged)."""
        return {
            "schema": PLAN_SCHEMA,
            "workload": self.workload,
            "search": self.search.to_dict(),
            "execution": self.execution.to_dict(),
            "scenario": self.scenario.to_dict(),
            "output": self.output,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "RunPlan":
        """Inverse of :meth:`to_dict`; rejects unknown keys."""
        data = dict(data)
        schema = data.pop("schema", PLAN_SCHEMA)
        if schema != PLAN_SCHEMA:
            raise ValueError(f"unsupported plan schema {schema!r}")
        for key, node in (("search", SearchPlan),
                          ("execution", ExecutionPolicy),
                          ("scenario", ScenarioPlan)):
            if key in data and isinstance(data[key], dict):
                data[key] = node.from_dict(data[key])
        return cls(**_checked(cls, data, section="plan"))

    def to_json(self, indent: int | None = 2) -> str:
        """The plan as a JSON string."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "RunPlan":
        """Parse a plan from :meth:`to_json` output."""
        return cls.from_dict(json.loads(text))


def save_plan(plan: RunPlan, path: str | Path) -> None:
    """Write a plan document to ``path`` (pretty-printed JSON).

    Uses the same atomic temp-file-then-replace write as checkpoints
    and campaign artifacts, so a crash mid-dump never leaves a torn
    plan file.
    """
    from repro.core.serialization import atomic_write_json

    atomic_write_json(plan.to_dict(), path)


def load_plan(path: str | Path) -> RunPlan:
    """Read a plan document written by :func:`save_plan`."""
    return RunPlan.from_json(Path(path).read_text())


def canonical_plan_json(plan: RunPlan) -> str:
    """The plan's canonical serialized form.

    One fixed rendering -- sorted keys, minimal separators -- so that
    equal plans serialize to equal bytes whatever dict order or
    formatting produced them.  This is the preimage of
    :func:`plan_hash`, the key of the service's content-addressed
    result store.
    """
    return json.dumps(plan.to_dict(), sort_keys=True, separators=(",", ":"))


def plan_hash(plan: RunPlan) -> str:
    """Content hash (SHA-256 hex) of the canonical plan document.

    Two plans share a hash iff their full plan documents -- workload,
    search, execution, scenario and output -- are identical.  The
    :class:`~repro.service.SearchService` keys its result store and its
    in-flight dedup on this, so resubmitting a byte-identical plan
    returns the stored result without re-running.  Note the hash
    deliberately covers the execution policy too: it never *changes* a
    sequential trial ledger, but batched trajectories are legitimately
    different runs, so over-keying is the conservative choice.
    """
    return hashlib.sha256(canonical_plan_json(plan).encode()).hexdigest()


def _checked(
    cls: type, data: dict[str, Any], section: str = "plan"
) -> dict[str, Any]:
    """Reject keys that are not fields of ``cls`` (typo safety).

    The error names each offending key and its plan section, lists the
    section's valid fields, and suggests the closest valid field when
    one is plausibly a typo (``eval_worker`` -> ``eval_workers``).
    """
    fields = {f.name for f in dataclasses.fields(cls)}
    unknown = sorted(set(data) - fields)
    if unknown:
        described = []
        for key in unknown:
            close = difflib.get_close_matches(key, fields, n=1)
            hint = f" (did you mean {close[0]!r}?)" if close else ""
            described.append(f"{key!r}{hint}")
        raise ValueError(
            f"unknown {cls.__name__} keys in the {section!r} plan section: "
            f"{', '.join(described)}; valid fields: "
            f"{', '.join(sorted(fields))}"
        )
    return data
